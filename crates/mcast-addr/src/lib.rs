//! Multicast address-space substrate for the MASC/BGMP reproduction.
//!
//! This crate provides the address arithmetic the MASC protocol (and the
//! G-RIB in the BGP substrate) is built on:
//!
//! * [`prefix`] — class-D addresses and contiguous-mask prefixes with
//!   the buddy/split/first-sub-prefix operations of the paper's claim
//!   algorithm (§4.3.3);
//! * [`space`] — free-space tracking over a root prefix (largest free
//!   blocks, claim candidates, doubling checks);
//! * [`block`] — the intra-domain (MAAS-side) first-fit block allocator
//!   with active/inactive prefixes;
//! * [`lifetimes`] — expiry-ordered lease tables (§4.3.1);
//! * [`kampai`] — non-contiguous-mask ranges (the paper's suggested
//!   Kampai extension, used by the utilization ablation).
//!
//! Everything here is pure data structure: no I/O, no clock, no
//! randomness, so the same code serves the deterministic simulator and
//! the tokio actor runtime.

pub mod block;
pub mod kampai;
pub mod lifetimes;
pub mod prefix;
pub mod space;

pub use block::{BlockAllocator, OwnedPrefix};
pub use lifetimes::{LeaseTable, LifetimePool, Secs};
pub use prefix::{McastAddr, Prefix, PrefixError};
pub use space::SpaceTracker;
