//! Non-contiguous-mask address ranges (Tsuchiya's *Kampai* scheme).
//!
//! The paper (§4.3.3, §7) notes that the claim algorithm's utilization
//! could be improved "by the use of non-contiguous masks as in
//! Francis'/Tsuchiya's Kampai scheme", at the cost of operational
//! complexity. This module implements enough of that scheme to run the
//! utilization ablation: a range is `{a : a & mask == value}` where
//! `mask` need not be contiguous, and a range *doubles* by clearing any
//! single mask bit — no buddy-contiguity constraint, so expansion almost
//! never forces a fresh (un-aggregatable) prefix.

use crate::prefix::Prefix;

/// An address range defined by a possibly non-contiguous mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KampaiRange {
    /// Fixed bit values (only meaningful under `mask`).
    pub value: u32,
    /// Bits that are fixed; clear bits are free (range members vary).
    pub mask: u32,
}

impl KampaiRange {
    /// Creates a range, normalizing `value` to the mask.
    pub fn new(value: u32, mask: u32) -> Self {
        KampaiRange {
            value: value & mask,
            mask,
        }
    }

    /// A contiguous prefix viewed as a Kampai range.
    pub fn from_prefix(p: Prefix) -> Self {
        KampaiRange {
            value: p.base_u32(),
            mask: p.mask(),
        }
    }

    /// Number of addresses in the range.
    pub fn size(&self) -> u64 {
        1u64 << self.mask.count_zeros()
    }

    /// Membership test.
    pub fn contains(&self, addr: u32) -> bool {
        addr & self.mask == self.value
    }

    /// Two masked ranges intersect iff their fixed bits agree wherever
    /// both masks fix a bit.
    pub fn intersects(&self, other: &KampaiRange) -> bool {
        (self.value ^ other.value) & (self.mask & other.mask) == 0
    }

    /// The range doubled by freeing mask bit `bit` (0 = LSB). `None` if
    /// that bit is not currently fixed.
    pub fn freed(&self, bit: u8) -> Option<KampaiRange> {
        let b = 1u32 << bit;
        if self.mask & b == 0 {
            return None;
        }
        Some(KampaiRange {
            value: self.value & !b,
            mask: self.mask & !b,
        })
    }

    /// Fixed (mask) bit positions, LSB-first, excluding bits fixed by
    /// `within` (the enclosing space, which must stay fixed).
    pub fn freeable_bits(&self, within: &KampaiRange) -> Vec<u8> {
        (0..32)
            .filter(|b| self.mask & (1 << b) != 0 && within.mask & (1 << b) == 0)
            .collect()
    }
}

/// A Kampai allocator over an enclosing range (typically a parent's
/// contiguous prefix).
#[derive(Debug, Clone)]
pub struct KampaiSpace {
    root: KampaiRange,
    allocated: Vec<KampaiRange>,
}

impl KampaiSpace {
    /// Creates an allocator over the contiguous root prefix.
    pub fn new(root: Prefix) -> Self {
        KampaiSpace {
            root: KampaiRange::from_prefix(root),
            allocated: Vec::new(),
        }
    }

    /// The enclosing range.
    pub fn root(&self) -> KampaiRange {
        self.root
    }

    /// Currently allocated ranges.
    pub fn allocated(&self) -> &[KampaiRange] {
        &self.allocated
    }

    fn disjoint_from_all(&self, r: &KampaiRange, except: Option<usize>) -> bool {
        self.allocated
            .iter()
            .enumerate()
            .all(|(i, a)| Some(i) == except || !a.intersects(r))
    }

    /// Allocates a fresh range of `2^free_bits` addresses: fixes the
    /// lowest-numbered free bits to a combination not intersecting any
    /// existing range. Returns the index and range.
    pub fn alloc(&mut self, free_bits: u8) -> Option<(usize, KampaiRange)> {
        let host_bits: Vec<u8> = (0..32).filter(|b| self.root.mask & (1 << b) == 0).collect();
        if (free_bits as usize) > host_bits.len() {
            return None;
        }
        // Keep the low `free_bits` host bits free; enumerate values of
        // the remaining (fixed) host bits from zero upward.
        let fixed_bits = &host_bits[free_bits as usize..];
        let combos = 1u64 << fixed_bits.len().min(32);
        for combo in 0..combos {
            let mut value = self.root.value;
            let mut mask = self.root.mask;
            for (i, &b) in fixed_bits.iter().enumerate() {
                mask |= 1 << b;
                if combo & (1 << i) != 0 {
                    value |= 1 << b;
                }
            }
            let cand = KampaiRange { value, mask };
            if self.disjoint_from_all(&cand, None) {
                self.allocated.push(cand);
                return Some((self.allocated.len() - 1, cand));
            }
        }
        None
    }

    /// Doubles allocation `idx` by freeing any one fixed bit whose
    /// freed range stays disjoint from all other allocations. Returns
    /// the grown range.
    pub fn double(&mut self, idx: usize) -> Option<KampaiRange> {
        let r = *self.allocated.get(idx)?;
        for bit in r.freeable_bits(&self.root) {
            let grown = r.freed(bit)?;
            if self.disjoint_from_all(&grown, Some(idx)) {
                self.allocated[idx] = grown;
                return Some(grown);
            }
        }
        None
    }

    /// Releases allocation `idx`.
    pub fn release(&mut self, idx: usize) -> Option<KampaiRange> {
        if idx < self.allocated.len() {
            Some(self.allocated.remove(idx))
        } else {
            None
        }
    }

    /// Fraction of the root covered by allocations (allocations are
    /// disjoint by construction).
    pub fn utilization(&self) -> f64 {
        let total = 1u64 << self.root.mask.count_zeros();
        let used: u64 = self.allocated.iter().map(|r| r.size()).sum();
        used as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn range_size_and_contains() {
        let r = KampaiRange::from_prefix(p("224.0.1.0/24"));
        assert_eq!(r.size(), 256);
        assert!(r.contains(0xE000_0105));
        assert!(!r.contains(0xE000_0205));
    }

    #[test]
    fn noncontiguous_intersection() {
        // Fix bit 0 to 0 vs fix bit 0 to 1: disjoint even though both
        // span the whole space otherwise.
        let a = KampaiRange::new(0, 1);
        let b = KampaiRange::new(1, 1);
        assert!(!a.intersects(&b));
        let c = KampaiRange::new(0, 2); // fixes a different bit
        assert!(a.intersects(&c));
    }

    #[test]
    fn freeing_a_bit_doubles() {
        let r = KampaiRange::from_prefix(p("224.0.1.0/24"));
        let grown = r.freed(9).unwrap(); // free a non-contiguous bit
        assert_eq!(grown.size(), 512);
        assert!(grown.contains(0xE000_0100));
        assert!(grown.contains(0xE000_0300)); // bit 9 now free
        assert!(r.freed(9).unwrap().freed(9).is_none());
    }

    #[test]
    fn alloc_disjoint_and_double() {
        let mut s = KampaiSpace::new(p("224.0.0.0/24"));
        let (i0, r0) = s.alloc(4).unwrap(); // 16 addresses
        let (_i1, r1) = s.alloc(4).unwrap();
        assert!(!r0.intersects(&r1));
        // Doubling never intersects the other allocation.
        let grown = s.double(i0).unwrap();
        assert_eq!(grown.size(), 32);
        assert!(!grown.intersects(&s.allocated()[1]));
    }

    #[test]
    fn kampai_doubles_past_contiguous_fragmentation() {
        // Allocate 4 ranges of 16 in a /24, then double one repeatedly:
        // contiguous buddies would quickly collide; Kampai finds free
        // bits until real exhaustion.
        let mut s = KampaiSpace::new(p("224.0.0.0/24"));
        let (i0, _) = s.alloc(4).unwrap();
        for _ in 0..3 {
            s.alloc(4).unwrap();
        }
        let mut size = 16u64;
        while let Some(r) = s.double(i0) {
            size = r.size();
        }
        // 256 total, 48 held by the other three: best case for range 0
        // is 128 (one free bit left would need 256).
        assert!(size >= 64, "kampai doubling stopped too early at {size}");
        assert!(s.utilization() <= 1.0);
    }

    #[test]
    fn alloc_exhaustion() {
        let mut s = KampaiSpace::new(p("224.0.0.0/30"));
        assert!(s.alloc(1).is_some());
        assert!(s.alloc(1).is_some());
        assert!(s.alloc(1).is_none());
        assert_eq!(s.utilization(), 1.0);
        s.release(0);
        assert!(s.alloc(1).is_some());
    }
}
