//! Tree-invariant checking for chaos runs.
//!
//! The fault-injection harnesses assert two invariant sets over a
//! running [`Internet`](crate::internet::Internet):
//!
//! - [`check_running`] holds at *any* instant, even mid-repair with
//!   control messages in flight: referential integrity of every
//!   forwarding entry and absence of dead (S,G) state.
//! - [`check_quiescent`] holds once the protocols have settled after
//!   the last fault: shared-tree acyclicity and connectivity of every
//!   member domain toward the group's root domain, agreement between
//!   each (*,G) parent and the router's current G-RIB route, no
//!   orphaned (S,G) branches, no tree edges through links that are
//!   down or domains that are crashed, and a single tree attachment
//!   per domain.
//!
//! Checks read protocol state only through public accessors; the
//! expected-parent logic deliberately mirrors the repair performed by
//! the domain actor on route change, so "quiescent and consistent"
//! means "nothing left for the repair path to do".

use std::collections::{BTreeMap, BTreeSet};

use bgmp::{SourceId, Target};
use bgp::RouterId;
use mcast_addr::McastAddr;
use topology::DomainId;

use crate::internet::Internet;

/// One invariant violation, with enough context to debug the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An entry references a router id no domain owns.
    UnknownTarget {
        /// Domain holding the entry.
        domain: DomainId,
        /// Router holding the entry.
        router: RouterId,
        /// The group.
        group: McastAddr,
        /// The unknown router id.
        target: RouterId,
    },
    /// An entry's `via_exit` router has no (*,G) entry of its own.
    ViaExitMissing {
        /// Domain holding the entry.
        domain: DomainId,
        /// Router holding the entry.
        router: RouterId,
        /// The group.
        group: McastAddr,
        /// The exit router the entry points at.
        exit: RouterId,
    },
    /// An (S,G) entry with no targets at all (forwards nowhere).
    DeadSg {
        /// Domain holding the entry.
        domain: DomainId,
        /// Router holding the entry.
        router: RouterId,
        /// The source.
        source: SourceId,
        /// The group.
        group: McastAddr,
    },
    /// Following domain-level parent edges loops.
    Cycle {
        /// The group.
        group: McastAddr,
        /// A domain on the cycle.
        domain: DomainId,
    },
    /// A member domain's tree state does not reach the root domain.
    NotConnectedToRoot {
        /// The group.
        group: McastAddr,
        /// The disconnected member domain.
        domain: DomainId,
    },
    /// A member domain holds no serving (*,G) state at all.
    MemberOffTree {
        /// The group.
        group: McastAddr,
        /// The member domain.
        domain: DomainId,
    },
    /// A (*,G) parent disagrees with the router's current G-RIB route.
    RouteDisagrees {
        /// Domain holding the entry.
        domain: DomainId,
        /// Router holding the entry.
        router: RouterId,
        /// The group.
        group: McastAddr,
    },
    /// An (S,G) branch serving neither members nor downstream peers.
    OrphanSg {
        /// Domain holding the entry.
        domain: DomainId,
        /// Router holding the entry.
        router: RouterId,
        /// The source.
        source: SourceId,
        /// The group.
        group: McastAddr,
    },
    /// A tree edge crosses a link that is administratively down.
    ThroughDownLink {
        /// The group.
        group: McastAddr,
        /// Domain holding the entry.
        domain: DomainId,
        /// The far side of the down link.
        peer_domain: DomainId,
    },
    /// A tree edge points at a crashed (down) domain.
    ThroughDownNode {
        /// The group.
        group: McastAddr,
        /// Domain holding the entry.
        domain: DomainId,
        /// The crashed far side.
        peer_domain: DomainId,
    },
    /// A domain attaches to the same tree through two routers.
    MultipleAttachments {
        /// The group.
        group: McastAddr,
        /// The domain.
        domain: DomainId,
    },
}

/// router id -> owning domain, for every router in the internet.
fn router_domains(net: &Internet) -> BTreeMap<RouterId, DomainId> {
    let mut map = BTreeMap::new();
    for d in net.graph.domains() {
        for br in &net.domain(d).routers {
            map.insert(br.id, d);
        }
    }
    map
}

/// Is the domain's simulator node currently crashed?
fn is_down(net: &Internet, d: DomainId) -> bool {
    net.engine.faults().is_down(net.nodes[d.0])
}

/// Invariants that hold at any instant of a chaos run, including
/// mid-repair: every target a forwarding entry references must exist,
/// internal exit legs must lead to real state, and no (S,G) entry may
/// be target-less. Entries of crashed domains are skipped — their
/// state is dead RAM, wiped on restart.
pub fn check_running(net: &Internet) -> Vec<Violation> {
    let owners = router_domains(net);
    let mut violations = Vec::new();
    for d in net.graph.domains() {
        if is_down(net, d) {
            continue;
        }
        let actor = net.domain(d);
        let local_stars: BTreeMap<RouterId, BTreeSet<McastAddr>> = actor
            .routers
            .iter()
            .map(|br| {
                let gs = br
                    .bgmp
                    .table()
                    .star_entries()
                    .filter(|(p, _)| p.len() == 32)
                    .map(|(p, _)| p.base())
                    .collect();
                (br.id, gs)
            })
            .collect();
        for br in &actor.routers {
            for (p, e) in br.bgmp.table().star_entries() {
                if p.len() != 32 {
                    continue;
                }
                let g = p.base();
                for t in e.targets() {
                    if let Target::Peer(r) = t {
                        if !owners.contains_key(&r) {
                            violations.push(Violation::UnknownTarget {
                                domain: d,
                                router: br.id,
                                group: g,
                                target: r,
                            });
                        }
                    }
                }
                if let Some(exit) = e.via_exit {
                    if !local_stars.get(&exit).is_some_and(|gs| gs.contains(&g)) {
                        violations.push(Violation::ViaExitMissing {
                            domain: d,
                            router: br.id,
                            group: g,
                            exit,
                        });
                    }
                }
            }
            for (&(s, g), e) in br.bgmp.table().sg_entries() {
                if e.parent.is_none() && e.children.is_empty() {
                    violations.push(Violation::DeadSg {
                        domain: d,
                        router: br.id,
                        source: s,
                        group: g,
                    });
                }
                for t in e.targets() {
                    if let Target::Peer(r) = t {
                        if !owners.contains_key(&r) {
                            violations.push(Violation::UnknownTarget {
                                domain: d,
                                router: br.id,
                                group: g,
                                target: r,
                            });
                        }
                    }
                }
            }
        }
    }
    violations
}

/// The domain-level parent edges of a group's tree: domain -> parent
/// domains its routers' (*,G) entries point at (externally).
fn parent_edges(net: &Internet, g: McastAddr) -> BTreeMap<DomainId, BTreeSet<DomainId>> {
    let owners = router_domains(net);
    let mut edges: BTreeMap<DomainId, BTreeSet<DomainId>> = BTreeMap::new();
    for d in net.graph.domains() {
        for br in &net.domain(d).routers {
            if let Some(e) = br.bgmp.table().star_exact(g) {
                if let Some(Target::Peer(p)) = e.parent {
                    if let Some(&pd) = owners.get(&p) {
                        if pd != d {
                            edges.entry(d).or_default().insert(pd);
                        }
                    }
                }
            }
        }
    }
    edges
}

/// All groups with any (*,G) state or any local members, anywhere.
pub fn live_groups(net: &Internet) -> Vec<McastAddr> {
    let mut gs = BTreeSet::new();
    for d in net.graph.domains() {
        let actor = net.domain(d);
        gs.extend(actor.member_groups());
        for br in &actor.routers {
            gs.extend(
                br.bgmp
                    .table()
                    .star_entries()
                    .filter(|(p, _)| p.len() == 32)
                    .map(|(p, _)| p.base()),
            );
        }
    }
    gs.into_iter().collect()
}

/// The root domain of a group: the one whose routers hold a local
/// (originated) route covering it.
fn root_domain(net: &Internet, g: McastAddr) -> Option<DomainId> {
    net.graph.domains().find(|&d| {
        net.domain(d)
            .routers
            .iter()
            .any(|br| br.speaker.rib().lookup_group(g).is_some_and(|r| r.local))
    })
}

/// Full invariant set, valid once the run has quiesced (no faults
/// active except still-down links/nodes, and no control messages in
/// flight). See the module docs for the list.
pub fn check_quiescent(net: &Internet) -> Vec<Violation> {
    let mut violations = check_running(net);
    let owners = router_domains(net);
    for g in live_groups(net) {
        let edges = parent_edges(net, g);
        let root = root_domain(net, g);

        for d in net.graph.domains() {
            if is_down(net, d) {
                continue;
            }
            let actor = net.domain(d);
            let own: BTreeSet<RouterId> = actor.routers.iter().map(|br| br.id).collect();
            let mut external_attachments = 0usize;
            for br in &actor.routers {
                let Some(e) = br.bgmp.table().star_exact(g) else {
                    continue;
                };
                // G-RIB ↔ forwarding agreement: the parent must match
                // what a repair from the current route would install.
                let route = br.speaker.rib().lookup_group(g);
                let expected: Option<(Option<Target>, Option<RouterId>)> = match route {
                    Some(r) if r.local => Some((Some(Target::Migp), None)),
                    Some(r) if own.contains(&r.next_hop) => {
                        Some((Some(Target::Migp), Some(r.next_hop)))
                    }
                    Some(r) => Some((Some(Target::Peer(r.next_hop)), None)),
                    None => None,
                };
                let matches = match &expected {
                    Some(exp) => *exp == (e.parent, e.via_exit),
                    None => e.parent.is_none(),
                };
                if !matches {
                    violations.push(Violation::RouteDisagrees {
                        domain: d,
                        router: br.id,
                        group: g,
                    });
                }
                if matches!(e.parent, Some(Target::Peer(p)) if !own.contains(&p)) {
                    external_attachments += 1;
                }
                // No tree edge may cross a down link or point at a
                // crashed domain.
                for t in e.targets() {
                    let Target::Peer(p) = t else { continue };
                    let Some(&pd) = owners.get(&p) else { continue };
                    if pd == d {
                        continue;
                    }
                    if is_down(net, pd) {
                        violations.push(Violation::ThroughDownNode {
                            group: g,
                            domain: d,
                            peer_domain: pd,
                        });
                    } else if !net.engine.links().is_up(net.nodes[d.0], net.nodes[pd.0]) {
                        violations.push(Violation::ThroughDownLink {
                            group: g,
                            domain: d,
                            peer_domain: pd,
                        });
                    }
                }
            }
            if external_attachments > 1 {
                violations.push(Violation::MultipleAttachments {
                    group: g,
                    domain: d,
                });
            }
            // (S,G) branches must serve someone: local members or a
            // downstream peer.
            for br in &actor.routers {
                for (&(s, gg), e) in br.bgmp.table().sg_entries() {
                    if gg != g {
                        continue;
                    }
                    let serves_peer = e
                        .children
                        .iter()
                        .any(|t| matches!(t, Target::Peer(p) if !own.contains(p)));
                    let serves_members =
                        e.children.contains(&Target::Migp) && !actor.members_of(g).is_empty();
                    let feeds_internal = e
                        .children
                        .iter()
                        .any(|t| matches!(t, Target::Peer(p) if own.contains(p)));
                    if !(serves_peer || serves_members || feeds_internal) {
                        violations.push(Violation::OrphanSg {
                            domain: d,
                            router: br.id,
                            source: s,
                            group: g,
                        });
                    }
                }
            }
        }

        // Acyclicity + member connectivity toward the root domain.
        let mut member_domains: Vec<DomainId> = Vec::new();
        for d in net.graph.domains() {
            if !is_down(net, d) && !net.domain(d).members_of(g).is_empty() {
                member_domains.push(d);
            }
        }
        for d in net.graph.domains() {
            if is_down(net, d) {
                continue;
            }
            let on_tree = net
                .domain(d)
                .routers
                .iter()
                .any(|br| br.bgmp.table().star_exact(g).is_some());
            if !on_tree {
                continue;
            }
            let mut cur = d;
            let mut seen = BTreeSet::new();
            loop {
                if !seen.insert(cur) {
                    violations.push(Violation::Cycle {
                        group: g,
                        domain: d,
                    });
                    break;
                }
                if Some(cur) == root {
                    break;
                }
                let Some(parents) = edges.get(&cur) else {
                    // A non-root domain whose every entry has an
                    // internal parent is dangling off the tree.
                    if Some(cur) != root {
                        violations.push(Violation::NotConnectedToRoot {
                            group: g,
                            domain: d,
                        });
                    }
                    break;
                };
                // MultipleAttachments is reported separately; walk any
                // one parent here.
                cur = *parents.iter().next().expect("nonempty parent set");
            }
        }
        for m in member_domains {
            // Data only reaches the domain's members if some entry
            // forwards into the MIGP; transit entries (external parent
            // and external children only) do not count.
            let serving = net.domain(m).routers.iter().any(|br| {
                br.bgmp
                    .table()
                    .star_exact(g)
                    .is_some_and(|e| e.targets().any(|t| t == Target::Migp))
            });
            if !serving && Some(m) != root {
                violations.push(Violation::MemberOffTree {
                    group: g,
                    domain: m,
                });
            }
        }
    }
    violations
}
