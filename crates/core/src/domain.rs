//! One administrative domain as a simulation actor.
//!
//! A [`DomainActor`] hosts everything inside one domain boundary: its
//! border routers (each a BGP speaker plus a BGMP component), its MIGP
//! instance, and optionally a MASC node with the domain's MAAS. One
//! simulator node per domain keeps the actor boundary equal to the
//! administrative boundary — intra-domain coordination is direct,
//! inter-domain messages ride the simulated links.

use std::collections::{BTreeMap, BTreeSet};

use bgmp::{
    BgmpAction, BgmpMsg, BgmpRouter, ForwardDecision, NextHop, RouteLookup, SourceId, Target,
};
use bgp::session::{Session, SessionAction, SessionEvent, SessionState, SessionTimers};
use bgp::{Asn, BgpEvent, BgpMsg, BgpSpeaker, OutMsg, RouterId};
use masc::{MascAction, MascMsg, MascNode};
use mcast_addr::{McastAddr, Prefix, Secs};
use migp::{Delivery, LocalRouter, Migp, MigpEvent};
use simnet::{Ctx, Node, NodeId, SimDuration};

/// A host identity: lives in a domain, attached to an internal router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId {
    /// The host's domain.
    pub domain: Asn,
    /// Host number within the domain.
    pub host: u32,
}

/// A multicast data packet crossing domain boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPacket {
    /// Originating host.
    pub source: SourceId,
    /// Destination group.
    pub group: McastAddr,
    /// Unique id for delivery accounting.
    pub id: u64,
}

/// Messages between domain actors.
#[derive(Debug, Clone)]
pub enum Wire {
    /// BGP between border routers of adjacent domains.
    Bgp {
        /// Sending border router.
        from: RouterId,
        /// Receiving border router.
        to: RouterId,
        /// Payload.
        msg: BgpMsg,
    },
    /// BGMP between peering border routers.
    Bgmp {
        /// Sending border router.
        from: RouterId,
        /// Receiving border router.
        to: RouterId,
        /// Payload.
        msg: BgmpMsg,
    },
    /// MASC between domains.
    Masc {
        /// Sending domain.
        from: Asn,
        /// Payload.
        msg: MascMsg,
    },
    /// A data packet handed to a specific border router.
    Data {
        /// Sending border router (the arrival target).
        from: RouterId,
        /// Receiving border router.
        to: RouterId,
        /// The packet.
        packet: DataPacket,
    },
    /// External control: a host joins a group.
    HostJoin {
        /// The host.
        host: HostId,
        /// The group.
        group: McastAddr,
    },
    /// External control: a host leaves a group.
    HostLeave {
        /// The host.
        host: HostId,
        /// The group.
        group: McastAddr,
    },
    /// Control: the link (and thus the BGP/BGMP sessions) between a
    /// local border router and its external peer went down.
    PeerLinkDown {
        /// The local border router.
        router: RouterId,
        /// The peer router on the far side.
        peer: RouterId,
    },
    /// Control: the sessions came back.
    PeerLinkUp {
        /// The local border router.
        router: RouterId,
        /// The peer router on the far side.
        peer: RouterId,
    },
    /// Session liveness keepalive between peering border routers (only
    /// sent when `InternetConfig::sessions` is enabled).
    Keepalive {
        /// Sending border router.
        from: RouterId,
        /// Receiving border router.
        to: RouterId,
        /// The sender's incarnation (boot generation and session
        /// epoch packed together): a change mid-session tells the
        /// receiver that the peer rebooted — or silently declared
        /// this session dead and flushed it — and must be resynced.
        gen: u64,
    },
    /// A route-refresh request (RFC 2918 in spirit): the sender
    /// flushed this peering (it detected the peer's incarnation
    /// change) and asks the peer to re-advertise its routes and
    /// replay its BGMP joins. Needed because keepalives are subject
    /// to link jitter: the peer's own `PeerUp` resync can arrive
    /// *before* the bumped-generation keepalive that makes us flush,
    /// and would then be flushed along with the stale state.
    BgpRefresh {
        /// The requesting border router (the one that flushed).
        from: RouterId,
        /// The border router asked to re-send.
        to: RouterId,
    },
    /// External control: a host multicasts one packet.
    SendData {
        /// The sending host.
        host: HostId,
        /// The group.
        group: McastAddr,
        /// Packet id for accounting.
        id: u64,
    },
}

/// One border router: a BGP speaker plus the BGMP component, and its
/// position in the internal topology.
pub struct BorderRouter {
    /// Globally unique router id.
    pub id: RouterId,
    /// Where this router sits in the domain's internal graph.
    pub local: LocalRouter,
    /// The BGP speaker.
    pub speaker: BgpSpeaker,
    /// The BGMP component.
    pub bgmp: BgmpRouter,
}

/// Pre-resolved G-RIB/M-RIB answers for one (group, source-domain)
/// pair, computed from a border router's BGP speaker before the BGMP
/// engine runs (the paper's G-RIB lookup, §4.2/§5.2). Pre-resolving
/// keeps the engine call free of simultaneous borrows of the speaker
/// and the BGMP component.
#[derive(Debug, Clone, Copy)]
struct Resolved {
    group: McastAddr,
    group_nh: Option<NextHop>,
    domain: Option<(Asn, Option<NextHop>)>,
}

impl RouteLookup for Resolved {
    fn toward_group(&self, g: McastAddr) -> Option<NextHop> {
        debug_assert_eq!(g, self.group, "resolved for a different group");
        self.group_nh
    }
    fn toward_domain(&self, asn: Asn) -> Option<NextHop> {
        match self.domain {
            Some((a, nh)) if a == asn => nh,
            _ => {
                debug_assert!(false, "resolved for a different domain");
                None
            }
        }
    }
}

/// Timer key for the 1 s session-liveness tick. MASC deadline timers
/// are keyed by their deadline in seconds and the external poke uses
/// `u64::MAX`, so the top few values below it are free for control
/// timers.
const KEY_SESSION_TICK: u64 = u64::MAX - 1;

/// One liveness session toward an external peer router, plus the last
/// incarnation seen from that peer.
struct PeerSession {
    sess: Session,
    peer_gen: Option<u64>,
    /// Bumped whenever *we* declare this session dead (hold expiry,
    /// carrier loss, explicit link-down) and flush the peer's routes.
    /// Carried in our keepalives so a peer whose own session survived
    /// (asymmetric loss never touched our→its direction) still learns
    /// it must flush and resync once we reconnect — otherwise it
    /// would never replay its table and our Adj-RIB-In from it would
    /// stay empty forever.
    local_epoch: u64,
}

impl PeerSession {
    fn new(timers: SessionTimers) -> Self {
        PeerSession {
            sess: Session::new(timers),
            peer_gen: None,
            local_epoch: 0,
        }
    }
}

/// Delivery bookkeeping shared with tests and harnesses.
#[derive(Debug, Default, Clone)]
pub struct DeliveryLog {
    /// (packet id, receiving host) pairs, in arrival order.
    pub received: Vec<(u64, HostId)>,
    /// Packets seen more than once by the same host (must stay 0).
    pub duplicates: u64,
    /// Packets dropped for lack of any route or state.
    pub dropped: u64,
    /// Encapsulated border-to-border hand-offs (§5.3 overhead metric).
    pub encapsulations: u64,
}

/// One domain in the integrated architecture. See module docs.
pub struct DomainActor {
    /// This domain's ASN.
    pub asn: Asn, // lint:allow(snapshot-field-coverage) — identity; stays with the rebuilt instance
    /// Border routers, in creation order.
    pub routers: Vec<BorderRouter>,
    /// The intra-domain multicast protocol.
    pub migp: Box<dyn Migp>,
    /// MASC node (when dynamic allocation is enabled).
    pub masc: Option<MascNode>,
    /// Router ids of this domain (for internal/external tests).
    // lint:allow(snapshot-field-coverage) — wiring derived from router creation; rebuilt by the harness
    own_routers: BTreeSet<RouterId>,
    /// router id -> index in `routers`.
    // lint:allow(snapshot-field-coverage) — wiring derived from router creation; rebuilt by the harness
    router_index: BTreeMap<RouterId, usize>,
    /// router id -> owning domain actor node, for every known peer.
    // lint:allow(snapshot-field-coverage) — topology wiring; re-established when the harness rebuilds links
    peer_node: BTreeMap<RouterId, NodeId>,
    /// domain asn -> actor node (for MASC messaging).
    // lint:allow(snapshot-field-coverage) — topology wiring; re-established when the harness rebuilds links
    domain_node: BTreeMap<Asn, NodeId>,
    /// Local group members: group -> hosts.
    members: BTreeMap<McastAddr, BTreeSet<HostId>>,
    /// Delivery accounting.
    pub log: DeliveryLog,
    /// Per-(packet, host) dedupe for duplicate detection.
    seen: BTreeSet<(u64, HostId)>,
    /// Encapsulation cache (§5.3): (source, group) -> encapsulating
    /// router we should source-prune once native data arrives.
    encap_from: BTreeMap<(SourceId, McastAddr), RouterId>,
    /// (S,G) branches that have carried native data: encapsulated
    /// copies for them are dropped (§5.3: F2 "starts dropping the
    /// encapsulated copies of S's data flowing via F1").
    native_sg: BTreeSet<(SourceId, McastAddr)>,
    /// Whether decapsulating routers build source-specific branches.
    pub source_branches: bool,
    /// MASC deadline timers already scheduled.
    masc_scheduled: BTreeSet<Secs>,
    /// MASC actions produced outside an event context (synchronous
    /// `alloc_group_addr`), flushed on the next pump.
    masc_outbox: Vec<MascAction>,
    /// Statically assigned range (when MASC is not running).
    // lint:allow(snapshot-field-coverage) — scenario config; stays with the rebuilt instance
    pub static_range: Option<Prefix>,
    /// Next address offset handed out from the static range.
    static_next: u64,
    /// Session liveness timers. `None` disables the keepalive/hold
    /// machinery: peering failures then arrive only as explicit
    /// `PeerLinkDown`/`PeerLinkUp` wires.
    // lint:allow(snapshot-field-coverage) — scenario config; stays with the rebuilt instance
    pub session_timers: Option<SessionTimers>,
    /// Liveness session per (local border router, external peer).
    sessions: BTreeMap<(RouterId, RouterId), PeerSession>,
    /// Incremented on every restart and carried in keepalives, so
    /// peers detect a reboot that was shorter than their hold time.
    boot_gen: u64,
}

/// Snapshot of a `(*,G)` entry taken before tree repair:
/// (group, parent, via_exit, children).
type StarSnapshot = (
    McastAddr,
    Option<Target>,
    Option<RouterId>,
    BTreeSet<Target>,
);

impl DomainActor {
    /// Creates a domain actor. Peering and node maps are wired by the
    /// internet builder afterwards.
    pub fn new(asn: Asn, migp: Box<dyn Migp>) -> Self {
        DomainActor {
            asn,
            routers: Vec::new(),
            migp,
            masc: None,
            own_routers: BTreeSet::new(),
            router_index: BTreeMap::new(),
            peer_node: BTreeMap::new(),
            domain_node: BTreeMap::new(),
            members: BTreeMap::new(),
            log: DeliveryLog::default(),
            seen: BTreeSet::new(),
            encap_from: BTreeMap::new(),
            native_sg: BTreeSet::new(),
            source_branches: true,
            masc_scheduled: BTreeSet::new(),
            masc_outbox: Vec::new(),
            static_range: None,
            static_next: 0,
            session_timers: None,
            sessions: BTreeMap::new(),
            boot_gen: 0,
        }
    }

    /// Registers a border router.
    pub fn add_router(&mut self, router: BorderRouter) {
        self.own_routers.insert(router.id);
        self.router_index.insert(router.id, self.routers.len());
        self.routers.push(router);
    }

    /// Wires the address maps (called by the internet builder).
    pub fn wire(
        &mut self,
        peer_node: BTreeMap<RouterId, NodeId>,
        domain_node: BTreeMap<Asn, NodeId>,
    ) {
        self.peer_node = peer_node;
        self.domain_node = domain_node;
    }

    /// The internal router a host attaches to.
    pub fn router_of_host(&self, host: HostId) -> LocalRouter {
        host.host as usize % self.migp.net().len()
    }

    /// Allocates a fresh group address for a locally initiated group:
    /// from the MAAS when MASC runs, else from the static range.
    pub fn alloc_group_addr(&mut self, now: Secs) -> Option<McastAddr> {
        if let Some(masc) = &mut self.masc {
            let mut actions = Vec::new();
            let out = masc.request_block(now, 32, 365 * 86_400, &mut actions);
            // This runs outside an event context; buffer the actions
            // (claim messages, originations) for the next pump.
            self.masc_outbox.extend(actions);
            if let masc::BlockOutcome::Ready { block, .. } = out {
                return Some(block.base());
            }
            return None;
        }
        let range = self.static_range?;
        let addr = range.addr_at(self.static_next)?;
        self.static_next += 1;
        Some(addr)
    }

    /// Groups with at least one local member host.
    pub fn member_groups(&self) -> Vec<McastAddr> {
        self.members.keys().copied().collect()
    }

    /// Members of `g` in this domain.
    pub fn members_of(&self, g: McastAddr) -> Vec<HostId> {
        self.members
            .get(&g)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    fn router(&mut self, id: RouterId) -> &mut BorderRouter {
        let idx = self.router_index[&id];
        &mut self.routers[idx]
    }

    /// The border router whose G-RIB says the route to `g` exits
    /// through it (the paper's *best exit router*, §5).
    pub fn best_exit_for_group(&self, g: McastAddr) -> Option<RouterId> {
        // The best exit is the router whose selected route's next hop
        // is external (or which originated the route).
        for br in &self.routers {
            if let Some(r) = br.speaker.rib().lookup_group(g) {
                if r.local || !self.own_routers.contains(&r.next_hop) {
                    return Some(br.id);
                }
            }
        }
        None
    }

    /// The border router that is the best exit toward a domain.
    pub fn best_exit_for_domain(&self, asn: Asn) -> Option<RouterId> {
        for br in &self.routers {
            if let Some(r) = br.speaker.rib().lookup_domain(asn) {
                if r.local || !self.own_routers.contains(&r.next_hop) {
                    return Some(br.id);
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Action plumbing
    // ------------------------------------------------------------------

    /// Syncs one router's BGMP lookup memo with its own G-RIB after
    /// BGP processing: drains the prefixes whose selection changed and
    /// invalidates only the memoized groups they cover. A router's
    /// memo caches answers from *its own* speaker's RIB (see
    /// `resolve`), so no other router's memo can go stale
    /// from this router's event — iBGP fan-out mutates the other
    /// routers through their own `handle` calls, each followed by its
    /// own sync.
    fn sync_bgmp_memo(&mut self, router: RouterId) {
        let idx = self.router_index[&router];
        let br = &mut self.routers[idx];
        if br.speaker.rib().changed_groups_is_empty() {
            return;
        }
        let changed = br.speaker.take_changed_groups();
        br.bgmp.grib_changed_prefixes(&changed);
    }

    fn send_bgp(&mut self, ctx: &mut Ctx<'_, Wire>, from: RouterId, outs: Vec<OutMsg>) {
        for out in outs {
            if self.own_routers.contains(&out.to) {
                // iBGP: same actor, handle inline (recursion depth is
                // bounded by route churn; updates converge).
                let more = self
                    .router(out.to)
                    .speaker
                    .handle(BgpEvent::FromPeer { from, msg: out.msg });
                let to = out.to;
                self.sync_bgmp_memo(to);
                self.send_bgp(ctx, to, more);
            } else if let Some(&node) = self.peer_node.get(&out.to) {
                ctx.send(
                    node,
                    Wire::Bgp {
                        from,
                        to: out.to,
                        msg: out.msg,
                    },
                );
            }
        }
    }

    /// Runs BGP events on a router and ships the results.
    pub fn bgp_event(&mut self, ctx: &mut Ctx<'_, Wire>, router: RouterId, ev: BgpEvent) {
        let outs = self.router(router).speaker.handle(ev);
        // The speaker may change its G-RIB even when nothing is
        // exported (e.g. a suppressed withdraw), so sync before — not
        // only inside — send_bgp.
        self.sync_bgmp_memo(router);
        self.send_bgp(ctx, router, outs);
    }

    /// BGMP tree maintenance on route change: any (*,G) entry whose
    /// parent no longer agrees with the current G-RIB next hop —
    /// dangling after an outage, or pointing through a withdrawn path —
    /// is torn down locally and its children re-joined along the
    /// current route. (The paper leaves route-change handling to the
    /// protocol spec; this is the minimal correct version.)
    fn repair_dangling(&mut self, ctx: &mut Ctx<'_, Wire>) {
        // Tearing one entry down can orphan another (an internal leg
        // whose exit entry this pass removes), so iterate to a fixed
        // point; two or three rounds settle any real topology.
        for _ in 0..4 {
            if !self.repair_dangling_once(ctx) {
                break;
            }
        }
        self.prune_redundant_attachments(ctx);
    }

    /// One repair sweep; returns whether anything was torn down.
    fn repair_dangling_once(&mut self, ctx: &mut Ctx<'_, Wire>) -> bool {
        let router_ids: Vec<RouterId> = self.routers.iter().map(|r| r.id).collect();
        let mut changed = false;
        for rid in router_ids {
            let idx = self.router_index[&rid];
            let entries: Vec<StarSnapshot> = self.routers[idx]
                .bgmp
                .table()
                .star_entries()
                .filter(|(p, _)| p.len() == 32)
                .map(|(p, e)| (p.base(), e.parent, e.via_exit, e.children.clone()))
                .collect();
            for (g, parent, via_exit, children) in entries {
                let lookup = self.resolve(rid, g, None);
                let nh = bgmp::RouteLookup::toward_group(&lookup, g);
                let expected: Option<(Option<Target>, Option<RouterId>)> = match nh {
                    Some(NextHop::ExternalPeer(p)) => Some((Some(Target::Peer(p)), None)),
                    Some(NextHop::Internal { exit }) => Some((Some(Target::Migp), Some(exit))),
                    Some(NextHop::Local) => Some((Some(Target::Migp), None)),
                    None => None,
                };
                let current = (parent, via_exit);
                let matches = match &expected {
                    Some(exp) => *exp == current,
                    None => parent.is_none(), // unreachable: dangling is correct
                };
                // An internal leg is only healthy while the exit router
                // still carries the matching entry with the MIGP child;
                // a teardown at the exit (its upstream died) must pull
                // the dependents down with it even when the G-RIB still
                // names the same exit.
                let leg_alive = match (parent, via_exit) {
                    (Some(Target::Migp), Some(x)) => self.router_index.get(&x).is_some_and(|&xi| {
                        self.routers[xi]
                            .bgmp
                            .table()
                            .star_exact(g)
                            .is_some_and(|e| e.children.contains(&Target::Migp))
                    }),
                    _ => true,
                };
                if matches && leg_alive {
                    continue;
                }
                changed = true;
                // Tear down the stale attachment (prune toward the old
                // parent if it is a live peer) and re-join the children
                // along the current route.
                if let Some(Target::Peer(old)) = parent {
                    let msg = BgmpMsg::Prune(g);
                    if self.own_routers.contains(&old) {
                        self.bgmp_from_peer(ctx, old, rid, msg);
                    } else if let Some(&node) = self.peer_node.get(&old) {
                        ctx.send(
                            node,
                            Wire::Bgmp {
                                from: rid,
                                to: old,
                                msg,
                            },
                        );
                    }
                }
                self.routers[idx].bgmp.table_mut().star_remove(g);
                // Retract our half of a (still-live) internal leg so
                // the exit's MIGP child doesn't linger as a phantom
                // downstream.
                if parent == Some(Target::Migp) {
                    if let Some(x) = via_exit {
                        if x != rid && self.router_index.contains_key(&x) && leg_alive {
                            self.bgmp_prune(ctx, x, Target::Migp, g);
                        }
                    }
                }
                for c in children {
                    self.bgmp_join(ctx, rid, c, g);
                }
            }
        }
        changed
    }

    /// A domain must attach to a group's tree through exactly one
    /// border router; a second attachment closes a cycle on the
    /// bidirectional tree (outage/heal sequences can leave one behind).
    /// An entry whose only child is the MIGP component is legitimate
    /// only at the domain's best exit for the group (serving local
    /// members) or at a router referenced as the internal exit of
    /// another router's entry; anything else is pruned.
    fn prune_redundant_attachments(&mut self, ctx: &mut Ctx<'_, Wire>) {
        use std::collections::BTreeSet;
        let router_ids: Vec<RouterId> = self.routers.iter().map(|r| r.id).collect();
        // group -> routers referenced as via_exit.
        let mut referenced: BTreeMap<McastAddr, BTreeSet<RouterId>> = BTreeMap::new();
        let mut candidates: Vec<(RouterId, McastAddr)> = Vec::new();
        for rid in &router_ids {
            let idx = self.router_index[rid];
            for (p, e) in self.routers[idx].bgmp.table().star_entries() {
                if p.len() != 32 {
                    continue;
                }
                let g = p.base();
                if let Some(exit) = e.via_exit {
                    referenced.entry(g).or_default().insert(exit);
                }
                let migp_only = e.children.len() == 1 && e.children.contains(&Target::Migp);
                let upstream_parent = matches!(e.parent, Some(Target::Peer(_)));
                // Parent and only child both the MIGP component with an
                // internal via-exit: every target is the domain itself,
                // so the entry can never move a packet — churn residue.
                let internal_phantom = e.parent == Some(Target::Migp) && e.via_exit.is_some();
                if migp_only && (upstream_parent || internal_phantom) {
                    candidates.push((*rid, g));
                }
            }
        }
        for (rid, g) in candidates {
            let is_best_exit = self.best_exit_for_group(g) == Some(rid);
            let is_referenced = referenced.get(&g).is_some_and(|s| s.contains(&rid));
            let serves_members = self.migp.has_members(g);
            if (is_best_exit && serves_members) || is_referenced {
                continue;
            }
            self.bgmp_prune(ctx, rid, Target::Migp, g);
        }
        // A pruned attachment may have been the one actually carrying
        // local members (its prune cascades down its own internal
        // leg); re-anchor any group that just lost service at the
        // canonical best exit, synchronously — domains without the
        // session tick have no periodic refresh to catch this later.
        self.refresh_membership(ctx);
    }

    /// Originates a group route at every border router (the MASC range
    /// was granted; §4.2: the range "is sent to the other border
    /// routers of the domain, which then inject [it] into BGP").
    pub fn originate_group_route(&mut self, ctx: &mut Ctx<'_, Wire>, prefix: Prefix) {
        let ids: Vec<RouterId> = self.routers.iter().map(|r| r.id).collect();
        for id in ids {
            let outs = self.router(id).speaker.originate_group(prefix);
            self.sync_bgmp_memo(id);
            self.send_bgp(ctx, id, outs);
        }
    }

    /// Withdraws a group route everywhere (range lost).
    pub fn withdraw_group_route(&mut self, ctx: &mut Ctx<'_, Wire>, prefix: Prefix) {
        let ids: Vec<RouterId> = self.routers.iter().map(|r| r.id).collect();
        for id in ids {
            let outs = self.router(id).speaker.withdraw_group(prefix);
            self.sync_bgmp_memo(id);
            self.send_bgp(ctx, id, outs);
        }
    }

    fn apply_bgmp_actions(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        at_router: RouterId,
        actions: Vec<BgmpAction>,
    ) {
        for a in actions {
            match a {
                BgmpAction::SendToPeer { to, msg } => {
                    if self.own_routers.contains(&to) {
                        // Internal BGMP peering (e.g. F2 -> F1 source
                        // prunes): handle inline.
                        self.bgmp_from_peer(ctx, to, at_router, msg);
                    } else if let Some(&node) = self.peer_node.get(&to) {
                        ctx.send(
                            node,
                            Wire::Bgmp {
                                from: at_router,
                                to,
                                msg,
                            },
                        );
                    }
                }
                BgmpAction::MigpSubscribe(g) => {
                    let local = self.router(at_router).local;
                    self.migp.border_subscribe(local, g);
                }
                BgmpAction::MigpUnsubscribe(g) => {
                    let local = self.router(at_router).local;
                    self.migp.border_unsubscribe(local, g);
                }
                BgmpAction::JoinViaMigp { exit, group } => {
                    // Internal leg: both ends subscribe, and the exit's
                    // BGMP continues the join upstream (§5.2, A2→A3).
                    let local = self.router(at_router).local;
                    self.migp.border_subscribe(local, group);
                    if exit != at_router {
                        self.bgmp_join(ctx, exit, Target::Migp, group);
                    }
                }
                BgmpAction::PruneViaMigp { exit, group } => {
                    let local = self.router(at_router).local;
                    self.migp.border_unsubscribe(local, group);
                    if exit != at_router {
                        self.bgmp_prune(ctx, exit, Target::Migp, group);
                    }
                }
                BgmpAction::SourceJoinViaMigp {
                    exit,
                    source,
                    group,
                } => {
                    let local = self.router(at_router).local;
                    self.migp.border_subscribe(local, group);
                    if exit != at_router {
                        let lookup = self.resolve(exit, group, Some(source.domain));
                        let idx = self.router_index[&exit];
                        let acts = self.routers[idx].bgmp.source_join(
                            Target::Migp,
                            source,
                            group,
                            &lookup,
                        );
                        self.apply_bgmp_actions(ctx, exit, acts);
                    }
                }
                BgmpAction::SourcePruneViaMigp {
                    exit,
                    source,
                    group,
                } => {
                    let local = self.router(at_router).local;
                    self.migp.border_unsubscribe(local, group);
                    if exit != at_router {
                        let idx = self.router_index[&exit];
                        let acts = self.routers[idx]
                            .bgmp
                            .source_prune(Target::Migp, source, group);
                        self.apply_bgmp_actions(ctx, exit, acts);
                    }
                }
            }
        }
    }

    fn classify(&self, route: &bgp::Route) -> NextHop {
        if route.local {
            NextHop::Local
        } else if self.own_routers.contains(&route.next_hop) {
            NextHop::Internal {
                exit: route.next_hop,
            }
        } else {
            NextHop::ExternalPeer(route.next_hop)
        }
    }

    /// Pre-resolves the route lookups the BGMP engine may make while
    /// handling `g` (and optionally a source domain).
    fn resolve(&self, router: RouterId, g: McastAddr, src_domain: Option<Asn>) -> Resolved {
        let idx = self.router_index[&router];
        let speaker = &self.routers[idx].speaker;
        let group_nh = speaker.rib().lookup_group(g).map(|r| self.classify(r));
        let domain = src_domain.map(|asn| {
            let nh = if asn == self.asn {
                Some(NextHop::Local)
            } else {
                speaker.rib().lookup_domain(asn).map(|r| self.classify(r))
            };
            (asn, nh)
        });
        Resolved {
            group: g,
            group_nh,
            domain,
        }
    }

    /// Feeds a join into a router's BGMP component.
    pub fn bgmp_join(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        router: RouterId,
        child: Target,
        g: McastAddr,
    ) {
        let lookup = self.resolve(router, g, None);
        let idx = self.router_index[&router];
        let actions = self.routers[idx].bgmp.join(child, g, &lookup);
        self.apply_bgmp_actions(ctx, router, actions);
    }

    /// Feeds a prune into a router's BGMP component.
    pub fn bgmp_prune(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        router: RouterId,
        child: Target,
        g: McastAddr,
    ) {
        let idx = self.router_index[&router];
        let actions = self.routers[idx].bgmp.prune(child, g);
        self.apply_bgmp_actions(ctx, router, actions);
    }

    fn bgmp_from_peer(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        router: RouterId,
        from: RouterId,
        msg: BgmpMsg,
    ) {
        let lookup = match msg {
            BgmpMsg::Join(g) | BgmpMsg::Prune(g) => self.resolve(router, g, None),
            BgmpMsg::SourceJoin(s, g) | BgmpMsg::SourcePrune(s, g) => {
                self.resolve(router, g, Some(s.domain))
            }
        };
        let idx = self.router_index[&router];
        let actions = self.routers[idx].bgmp.from_peer(from, msg, &lookup);
        self.apply_bgmp_actions(ctx, router, actions);
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    fn host_join(&mut self, ctx: &mut Ctx<'_, Wire>, host: HostId, g: McastAddr) {
        debug_assert_eq!(host.domain, self.asn);
        self.members.entry(g).or_default().insert(host);
        let local = self.router_of_host(host);
        let events = self.migp.host_join(local, g);
        for ev in events {
            if let MigpEvent::FirstMember(g) = ev {
                // Domain-Wide Report reaches the best exit router's
                // BGMP component (§5).
                if let Some(exit) = self.best_exit_for_group(g) {
                    self.bgmp_join(ctx, exit, Target::Migp, g);
                }
            }
        }
    }

    fn host_leave(&mut self, ctx: &mut Ctx<'_, Wire>, host: HostId, g: McastAddr) {
        if let Some(set) = self.members.get_mut(&g) {
            set.remove(&host);
            if set.is_empty() {
                self.members.remove(&g);
            }
        }
        let local = self.router_of_host(host);
        let events = self.migp.host_leave(local, g);
        for ev in events {
            if let MigpEvent::LastMemberLeft(g) = ev {
                if let Some(exit) = self.best_exit_for_group(g) {
                    self.bgmp_prune(ctx, exit, Target::Migp, g);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Records deliveries to local member hosts at the given routers.
    fn record_deliveries(&mut self, packet: DataPacket, member_routers: &[LocalRouter]) {
        let hosts: Vec<HostId> = self
            .members
            .get(&packet.group)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for h in hosts {
            // The sending host does not count its own loopback copy.
            if packet.source.domain == self.asn && packet.source.host == h.host {
                continue;
            }
            let r = self.router_of_host(h);
            if member_routers.contains(&r) {
                if self.seen.insert((packet.id, h)) {
                    self.log.received.push((packet.id, h));
                } else {
                    self.log.duplicates += 1;
                }
            }
        }
    }

    /// Injects a packet into the MIGP at a border router and fans the
    /// result out (members recorded, subscribed borders forwarded).
    /// Returns whether anyone (member or border) received a copy.
    fn inject_via_migp(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        entry_router: RouterId,
        packet: DataPacket,
    ) -> bool {
        let entry_local = self.router(entry_router).local;
        // RPF expectation: the border router unicast routing would use
        // toward the source's domain (§5.3).
        let expected = if packet.source.domain == self.asn {
            None
        } else {
            self.best_exit_for_domain(packet.source.domain)
                .map(|r| self.router(r).local)
        };
        match self.migp.deliver(entry_local, packet.group, expected) {
            Delivery::Delivered {
                member_routers,
                borders,
                ..
            } => {
                self.record_deliveries(packet, &member_routers);
                // Hand to subscribed border routers (BGMP child/parent
                // targets reached through the domain).
                let border_ids: Vec<RouterId> = self
                    .routers
                    .iter()
                    .filter(|br| borders.contains(&br.local) && br.id != entry_router)
                    .map(|br| br.id)
                    .collect();
                let any = !member_routers.is_empty() || !border_ids.is_empty();
                for b in border_ids {
                    self.forward_at(ctx, b, Some(Target::Migp), packet);
                }
                any
            }
            Delivery::RpfReject { required_entry } => {
                // Once the branch carries native data, encapsulated
                // copies are dropped (§5.3).
                if self.native_sg.contains(&(packet.source, packet.group)) {
                    return true;
                }
                // §5.3: encapsulate to the border router internal RPF
                // expects, which decapsulates and injects.
                self.log.encapsulations += 1;
                let required_id = self
                    .routers
                    .iter()
                    .find(|br| br.local == required_entry)
                    .map(|br| br.id);
                if let Some(req) = required_id {
                    if self.source_branches {
                        self.maybe_start_source_branch(ctx, req, entry_router, packet);
                    }
                    // Decapsulated injection at the required entry.
                    let entry_local2 = self.router(req).local;
                    if let Delivery::Delivered {
                        member_routers,
                        borders,
                        ..
                    } = self
                        .migp
                        .deliver(entry_local2, packet.group, Some(entry_local2))
                    {
                        self.record_deliveries(packet, &member_routers);
                        let border_ids: Vec<RouterId> = self
                            .routers
                            .iter()
                            .filter(|br| borders.contains(&br.local) && br.id != entry_router)
                            .map(|br| br.id)
                            .collect();
                        for b in border_ids {
                            self.forward_at(ctx, b, Some(Target::Migp), packet);
                        }
                    }
                    // `deliver` lists the borders reached *from* the
                    // entry, never the entry itself — but the
                    // decapsulating router can hold the domain's tree
                    // attachment, and the decapsulated data must
                    // continue down the shared tree to its child peer
                    // targets. Only the (*,G) children count: members
                    // were just delivered through the MIGP, and an
                    // (S,G) entry here points *toward* the source, so
                    // climbing it would ship the data backwards.
                    let child_peers: Vec<RouterId> = {
                        let idx = self.router_index[&req];
                        self.routers[idx]
                            .bgmp
                            .table()
                            .star_lookup(packet.group)
                            .map(|(_, e)| {
                                e.children
                                    .iter()
                                    .filter_map(|c| match c {
                                        Target::Peer(p) => Some(*p),
                                        Target::Migp => None,
                                    })
                                    .collect()
                            })
                            .unwrap_or_default()
                    };
                    for p in child_peers {
                        if self.own_routers.contains(&p) {
                            self.forward_at(ctx, p, Some(Target::Peer(req)), packet);
                        } else if let Some(&node) = self.peer_node.get(&p) {
                            ctx.send(
                                node,
                                Wire::Data {
                                    from: req,
                                    to: p,
                                    packet,
                                },
                            );
                        }
                    }
                } else {
                    self.log.dropped += 1;
                }
                true
            }
        }
    }

    /// The decapsulating router may build a source-specific branch to
    /// stop the encapsulation (§5.3, F2's option).
    fn maybe_start_source_branch(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        decap_router: RouterId,
        encap_router: RouterId,
        packet: DataPacket,
    ) {
        let key = (packet.source, packet.group);
        if self.encap_from.contains_key(&key) {
            return; // already building
        }
        let idx = self.router_index[&decap_router];
        if self.routers[idx]
            .bgmp
            .table()
            .sg(packet.source, packet.group)
            .is_some()
        {
            return;
        }
        self.encap_from.insert(key, encap_router);
        let lookup = self.resolve(decap_router, packet.group, Some(packet.source.domain));
        let actions =
            self.routers[idx]
                .bgmp
                .source_join(Target::Migp, packet.source, packet.group, &lookup);
        self.apply_bgmp_actions(ctx, decap_router, actions);
    }

    /// Runs the BGMP forwarding decision at a border router and ships
    /// copies onward.
    fn forward_at(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        router: RouterId,
        from: Option<Target>,
        packet: DataPacket,
    ) {
        // Native (S,G) data arriving from a peer ends the need for
        // encapsulated copies: send the source-specific prune to the
        // encapsulating router (§5.3, F2 -> F1). "Native" means the
        // source branch works: the data reached the entry router the
        // domain's RPF check expects. Shared-tree data hitting an
        // sg-holding router on the wrong side must not count — the
        // still-building branch hasn't delivered anything yet, and
        // flagging it would drop the packet's own decapsulated copy.
        if let Some(Target::Peer(_)) = from {
            let key = (packet.source, packet.group);
            let has_sg = {
                let idx = self.router_index[&router];
                self.routers[idx]
                    .bgmp
                    .table()
                    .sg(packet.source, packet.group)
                    .is_some()
            };
            let at_rpf_entry = self.best_exit_for_domain(packet.source.domain) == Some(router);
            if has_sg && at_rpf_entry {
                self.native_sg.insert(key);
                if let Some(&encap) = self.encap_from.get(&key) {
                    self.encap_from.remove(&key);
                    self.bgmp_from_peer_send_prune(ctx, router, encap, packet);
                }
            }
        }
        let lookup = self.resolve(router, packet.group, Some(packet.source.domain));
        let idx = self.router_index[&router];
        let decision = self.routers[idx]
            .bgmp
            .forward(from, packet.source, packet.group, &lookup);
        match decision {
            ForwardDecision::Targets(targets) => {
                for t in targets {
                    match t {
                        Target::Peer(p) => {
                            if self.own_routers.contains(&p) {
                                // Internal peer target (rare): hand over
                                // directly.
                                self.forward_at(ctx, p, Some(Target::Peer(router)), packet);
                            } else if let Some(&node) = self.peer_node.get(&p) {
                                ctx.send(
                                    node,
                                    Wire::Data {
                                        from: router,
                                        to: p,
                                        packet,
                                    },
                                );
                            }
                        }
                        Target::Migp => {
                            self.inject_via_migp(ctx, router, packet);
                        }
                    }
                }
            }
            ForwardDecision::TowardRoot(nh) => match nh {
                NextHop::ExternalPeer(p) => {
                    if let Some(&node) = self.peer_node.get(&p) {
                        ctx.send(
                            node,
                            Wire::Data {
                                from: router,
                                to: p,
                                packet,
                            },
                        );
                    }
                }
                NextHop::Internal { exit } => {
                    // Data transits the domain through the MIGP (§5:
                    // DVMRP broadcasts through A, and every on-tree
                    // border router of A forwards a copy). If nothing
                    // inside the domain wants it, hand it straight to
                    // the next-hop border router toward the root.
                    if !self.inject_via_migp(ctx, router, packet) {
                        self.forward_at(ctx, exit, Some(Target::Migp), packet);
                    }
                }
                NextHop::Local => {
                    // We are the root domain; deliver internally if
                    // anyone listens.
                    if self.migp.has_members(packet.group) {
                        self.inject_via_migp(ctx, router, packet);
                    } else {
                        self.log.dropped += 1;
                    }
                }
            },
            ForwardDecision::Drop => {
                self.log.dropped += 1;
            }
        }
    }

    fn bgmp_from_peer_send_prune(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        at: RouterId,
        encap: RouterId,
        packet: DataPacket,
    ) {
        let msg = BgmpMsg::SourcePrune(packet.source, packet.group);
        if self.own_routers.contains(&encap) {
            self.bgmp_from_peer(ctx, encap, at, msg);
        } else if let Some(&node) = self.peer_node.get(&encap) {
            ctx.send(
                node,
                Wire::Bgmp {
                    from: at,
                    to: encap,
                    msg,
                },
            );
        }
    }

    /// A local host multicasts one packet.
    fn send_data(&mut self, ctx: &mut Ctx<'_, Wire>, host: HostId, g: McastAddr, id: u64) {
        let source = SourceId {
            domain: self.asn,
            host: host.host,
        };
        let packet = DataPacket {
            source,
            group: g,
            id,
        };
        let entry = self.router_of_host(host);
        // Deliver within the domain first (senders need not be
        // members, §3).
        if let Delivery::Delivered {
            member_routers,
            borders,
            ..
        } = self.migp.deliver(entry, g, None)
        {
            self.record_deliveries(packet, &member_routers);
            let border_ids: Vec<RouterId> = self
                .routers
                .iter()
                .filter(|br| borders.contains(&br.local))
                .map(|br| br.id)
                .collect();
            if border_ids.is_empty() {
                // No subscribed border: push toward the root domain via
                // the best exit router (§5: DVMRP floods internally and
                // non-exit borders prune).
                if let Some(exit) = self.best_exit_for_group(g) {
                    self.forward_at(ctx, exit, Some(Target::Migp), packet);
                }
            } else {
                for b in border_ids {
                    self.forward_at(ctx, b, Some(Target::Migp), packet);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // MASC plumbing
    // ------------------------------------------------------------------

    /// Applies MASC actions: BGP originations/withdrawals and outward
    /// messages.
    fn apply_masc_actions(&mut self, ctx: &mut Ctx<'_, Wire>, actions: Vec<MascAction>) {
        for a in actions {
            match a {
                MascAction::Send { to, msg } => {
                    if let Some(&node) = self.domain_node.get(&to) {
                        ctx.send(
                            node,
                            Wire::Masc {
                                from: self.asn,
                                msg,
                            },
                        );
                    }
                }
                MascAction::RangeGranted { prefix, .. } => {
                    self.originate_group_route(ctx, prefix);
                }
                MascAction::RangeLost { prefix } => {
                    self.withdraw_group_route(ctx, prefix);
                }
                MascAction::BlockReady { .. }
                | MascAction::BlockExpired { .. }
                | MascAction::ClaimFailed { .. } => {}
            }
        }
        self.pump_masc(ctx);
    }

    fn pump_masc(&mut self, ctx: &mut Ctx<'_, Wire>) {
        if self.masc.is_none() {
            return;
        }
        // Flush actions produced outside event context first.
        let outbox = std::mem::take(&mut self.masc_outbox);
        if !outbox.is_empty() {
            self.apply_masc_actions(ctx, outbox);
        }
        let Some(masc) = &mut self.masc else { return };
        let now = ctx.now().as_secs();
        let mut all = Vec::new();
        let mut guard = 0;
        while masc.next_deadline().is_some_and(|d| d <= now) {
            guard += 1;
            if guard > 64 {
                break;
            }
            let acts = masc.on_tick(now);
            if acts.is_empty() && masc.next_deadline().is_some_and(|d| d <= now) {
                break;
            }
            all.extend(acts);
        }
        if let Some(d) = masc.next_deadline() {
            let at = d.max(now + 1);
            if self.masc_scheduled.insert(at) {
                let delay = SimDuration::from_millis(
                    (at * 1000).saturating_sub(ctx.now().as_millis()).max(1),
                );
                ctx.set_timer(delay, at);
            }
        }
        if !all.is_empty() {
            self.apply_masc_actions(ctx, all);
        }
    }

    // ------------------------------------------------------------------
    // Peering liveness (sessions) and failure repair
    // ------------------------------------------------------------------

    /// Flushes BGP state from a dead peering and repairs affected BGMP
    /// tree state — the common tail of an explicit `PeerLinkDown` wire
    /// and a session hold-timer expiry.
    fn peer_down_repair(&mut self, ctx: &mut Ctx<'_, Wire>, router: RouterId, peer: RouterId) {
        if let Some(ps) = self.sessions.get_mut(&(router, peer)) {
            // Explicit link events race the liveness machinery; make
            // the session agree before repairing (no-op when Idle).
            let now = ctx.now().as_secs();
            ps.sess.on_event(now, SessionEvent::TransportDown);
        }
        // BGP flushes and fails over first, so the BGMP re-joins below
        // see post-failover routes.
        self.bgp_event(ctx, router, BgpEvent::PeerDown(peer));
        let lookup_groups: Vec<McastAddr> = {
            let idx = self.router_index[&router];
            self.routers[idx]
                .bgmp
                .table()
                .star_entries()
                .map(|(p, _)| p.base())
                .collect()
        };
        // Pre-resolve per group is per-call; peer_down needs a
        // lookup valid for every group it re-joins. Handle by
        // processing groups one at a time.
        let idx = self.router_index[&router];
        let mut all_actions = Vec::new();
        for g in lookup_groups {
            let lookup = self.resolve(router, g, None);
            let parent_is_dead = self.routers[idx]
                .bgmp
                .table()
                .star_exact(g)
                .is_some_and(|e| e.parent == Some(Target::Peer(peer)));
            let child_is_dead = self.routers[idx]
                .bgmp
                .table()
                .star_exact(g)
                .is_some_and(|e| e.children.contains(&Target::Peer(peer)));
            if parent_is_dead || child_is_dead {
                // peer_down on the full table is safe to call
                // repeatedly; restrict by doing it here where
                // the lookup matches the group being rerouted.
                let acts = self.routers[idx].bgmp.peer_down_for_group(peer, g, &lookup);
                all_actions.extend(acts);
            }
        }
        self.apply_bgmp_actions(ctx, router, all_actions);
        // The flush above changed this domain's own routes without any
        // incoming BGP wire (which is what normally triggers the
        // repair pass), so entries at *other* routers that pointed
        // through the dead peering — e.g. an internal leg whose
        // via-exit router just lost its upstream — would dangle
        // forever. Repair them now against the post-failover routes.
        self.repair_dangling(ctx);
    }

    fn send_keepalive(&mut self, ctx: &mut Ctx<'_, Wire>, router: RouterId, peer: RouterId) {
        let epoch = self
            .sessions
            .get(&(router, peer))
            .map_or(0, |ps| ps.local_epoch);
        if let Some(&node) = self.peer_node.get(&peer) {
            ctx.send(
                node,
                Wire::Keepalive {
                    from: router,
                    to: peer,
                    gen: self.boot_gen.wrapping_shl(32) | (epoch & 0xFFFF_FFFF),
                },
            );
        }
    }

    /// The 1 s liveness tick: drives keepalive transmission, hold
    /// expiry, and reconnects for every external peering.
    fn session_tick(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let keys: Vec<(RouterId, RouterId)> = self.sessions.keys().copied().collect();
        let now = ctx.now().as_secs();
        for (router, peer) in keys {
            let link_up = self.peer_node.get(&peer).is_some_and(|&n| ctx.link_up(n));
            let ps = self.sessions.get_mut(&(router, peer)).expect("keyed");
            let action = if ps.sess.state() == SessionState::Idle {
                if link_up && now >= ps.sess.retry_at() {
                    ps.sess.on_event(now, SessionEvent::TransportUp)
                } else {
                    SessionAction::None
                }
            } else if !link_up {
                // The transport under an active session vanished; no
                // need to wait out the hold timer on a link we can see
                // is gone (lossy links, by contrast, stay "up" and are
                // detected by hold expiry).
                ps.sess.on_event(now, SessionEvent::TransportDown)
            } else {
                ps.sess.on_tick(now)
            };
            match action {
                SessionAction::SendKeepalive => self.send_keepalive(ctx, router, peer),
                SessionAction::Down => {
                    // We are declaring the session dead on our own
                    // evidence; the peer's half may still be up. Bump
                    // our epoch so our next keepalive bounces it too.
                    self.sessions
                        .get_mut(&(router, peer))
                        .expect("keyed")
                        .local_epoch += 1;
                    self.peer_down_repair(ctx, router, peer);
                }
                SessionAction::Up | SessionAction::None => {}
            }
        }
        self.refresh_membership(ctx);
        ctx.set_timer(SimDuration::from_secs(1), KEY_SESSION_TICK);
    }

    /// A keepalive arrived at `router` from external peer `peer`.
    fn keepalive_in(
        &mut self,
        ctx: &mut Ctx<'_, Wire>,
        router: RouterId,
        peer: RouterId,
        gen: u64,
    ) {
        if !self.router_index.contains_key(&router) {
            return;
        }
        let now = ctx.now().as_secs();
        let Some(ps) = self.sessions.get_mut(&(router, peer)) else {
            return;
        };
        // A changed generation means the peer rebooted: its RIB and
        // tree state are gone, so treat the old session as dead (flush
        // and repair) before re-establishing with the new incarnation.
        let bounced = ps.peer_gen.is_some_and(|g| g != gen)
            && ps.sess.on_event(now, SessionEvent::TransportDown) == SessionAction::Down;
        ps.peer_gen = Some(gen);
        if ps.sess.state() == SessionState::Idle {
            // An incoming keepalive proves the transport works:
            // connect regardless of any pending back-off.
            ps.sess.on_event(now, SessionEvent::TransportUp);
        }
        let went_up = ps.sess.on_event(now, SessionEvent::MessageReceived) == SessionAction::Up;
        if bounced {
            self.peer_down_repair(ctx, router, peer);
            // We just dropped everything learned over this peering,
            // including any resync the peer may already have sent
            // (keepalive jitter can deliver its bounced-generation
            // keepalive after its re-advertisements). Pull a fresh
            // copy explicitly.
            if let Some(&node) = self.peer_node.get(&peer) {
                ctx.send(
                    node,
                    Wire::BgpRefresh {
                        from: router,
                        to: peer,
                    },
                );
            }
        }
        if went_up {
            // Answer so the peer's Connecting half establishes too,
            // then resync the full table (the session-layer PeerUp).
            self.send_keepalive(ctx, router, peer);
            self.bgp_event(ctx, router, BgpEvent::PeerUp(peer));
            self.session_up_replay(ctx, router, peer);
        }
    }

    /// BGMP's counterpart of the BGP `PeerUp` resync: when a session
    /// to `peer` (re-)establishes, re-send a Join for every (*,G)
    /// entry whose parent is that peer. The peer may have flushed its
    /// half of the peering (hold expiry, reboot) and dropped our child
    /// edge while our own entry survived untouched — without a replay
    /// the tree stays split across the peering and neither side ever
    /// notices, because each side's state is locally consistent.
    /// Joins are idempotent at the receiver, so replaying into an
    /// intact peer is harmless.
    fn session_up_replay(&mut self, ctx: &mut Ctx<'_, Wire>, router: RouterId, peer: RouterId) {
        let Some(&idx) = self.router_index.get(&router) else {
            return;
        };
        let groups: Vec<McastAddr> = self.routers[idx]
            .bgmp
            .table()
            .star_entries()
            .filter(|(p, e)| p.len() == 32 && e.parent == Some(Target::Peer(peer)))
            .map(|(p, _)| p.base())
            .collect();
        if let Some(&node) = self.peer_node.get(&peer) {
            for g in groups {
                ctx.send(
                    node,
                    Wire::Bgmp {
                        from: router,
                        to: peer,
                        msg: BgmpMsg::Join(g),
                    },
                );
            }
        }
    }

    /// The periodic membership refresh a real MIGP's domain-wide
    /// reports provide: any group with local members but no (*,G)
    /// entry delivering into the MIGP re-joins the tree through the
    /// current best exit. This is what re-attaches members whose state
    /// was torn down completely — after a node restart, or when a
    /// repair ran while no alternate route existed yet.
    fn refresh_membership(&mut self, ctx: &mut Ctx<'_, Wire>) {
        let groups: Vec<McastAddr> = self.members.keys().copied().collect();
        for g in groups {
            let served = self.routers.iter().any(|br| {
                br.bgmp
                    .table()
                    .star_exact(g)
                    .is_some_and(|e| e.targets().any(|t| t == Target::Migp))
            });
            if served {
                continue;
            }
            if let Some(exit) = self.best_exit_for_group(g) {
                self.bgmp_join(ctx, exit, Target::Migp, g);
            }
        }
    }
}

impl Node<Wire> for DomainActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire>) {
        // Originate domain reachability (M-RIB) from every border
        // router, and the static group range if configured.
        let ids: Vec<RouterId> = self.routers.iter().map(|r| r.id).collect();
        for id in ids {
            let outs = self.router(id).speaker.originate_domain();
            self.sync_bgmp_memo(id);
            self.send_bgp(ctx, id, outs);
        }
        if let Some(range) = self.static_range {
            self.originate_group_route(ctx, range);
        }
        // Top-level MASC domains claim a small starter range at
        // bootstrap (§4.4), so the hierarchy has space to hand out.
        if self.masc.as_ref().is_some_and(|m| m.is_top_level()) {
            let now = ctx.now().as_secs();
            let mut acts = Vec::new();
            self.masc
                .as_mut()
                .expect("checked")
                .start_expansion(now, 256, &mut acts);
            self.apply_masc_actions(ctx, acts);
        }
        self.pump_masc(ctx);
        // Session liveness: one session per external peering, driven
        // by a 1 s tick.
        if let Some(t) = self.session_timers {
            for br in &self.routers {
                for p in br.speaker.peers() {
                    if p.asn != self.asn {
                        self.sessions.insert((br.id, p.router), PeerSession::new(t));
                    }
                }
            }
            ctx.set_timer(SimDuration::from_secs(1), KEY_SESSION_TICK);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire>, _from: NodeId, msg: Wire) {
        match msg {
            Wire::Bgp { from, to, msg } => {
                self.bgp_event(ctx, to, BgpEvent::FromPeer { from, msg });
                // Route changes may let dangling tree state (entries
                // that lost their parent during an outage) re-join.
                self.repair_dangling(ctx);
            }
            Wire::Bgmp { from, to, msg } => {
                self.bgmp_from_peer(ctx, to, from, msg);
                // A prune cascade can remove an exit router's entry
                // while other routers' internal legs still reference
                // it (the MIGP child at an exit is shared, not
                // refcounted); sweep for dangling legs before the
                // next event observes the table.
                self.repair_dangling(ctx);
            }
            Wire::Masc { from, msg } => {
                if self.masc.is_some() {
                    let now = ctx.now().as_secs();
                    let actions = {
                        let masc = self.masc.as_mut().expect("checked");
                        masc.on_message(now, from, msg)
                    };
                    self.apply_masc_actions(ctx, actions);
                }
            }
            Wire::Data { from, to, packet } => {
                self.forward_at(ctx, to, Some(Target::Peer(from)), packet);
            }
            Wire::PeerLinkDown { router, peer } => {
                if let Some(ps) = self.sessions.get_mut(&(router, peer)) {
                    ps.local_epoch += 1;
                }
                self.peer_down_repair(ctx, router, peer);
            }
            Wire::PeerLinkUp { router, peer } => {
                self.bgp_event(ctx, router, BgpEvent::PeerUp(peer));
                self.session_up_replay(ctx, router, peer);
            }
            Wire::BgpRefresh { from, to } => {
                // Re-send our full table and our joins over this
                // peering; both are idempotent at the receiver.
                self.bgp_event(ctx, to, BgpEvent::PeerUp(from));
                self.session_up_replay(ctx, to, from);
            }
            Wire::Keepalive { from, to, gen } => self.keepalive_in(ctx, to, from, gen),
            Wire::HostJoin { host, group } => self.host_join(ctx, host, group),
            Wire::HostLeave { host, group } => self.host_leave(ctx, host, group),
            Wire::SendData { host, group, id } => self.send_data(ctx, host, group, id),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire>, key: u64) {
        match key {
            KEY_SESSION_TICK => self.session_tick(ctx),
            _ => {
                self.masc_scheduled.remove(&key);
                self.pump_masc(ctx);
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, Wire>) {
        // Fail-stop recovery: everything volatile died with the node.
        // Forwarding state is rebuilt from scratch; BGP/MASC config
        // and local membership intent (the hosts did not crash)
        // survive.
        self.boot_gen += 1;
        for br in &mut self.routers {
            br.bgmp = BgmpRouter::new(br.id);
        }
        self.encap_from.clear();
        self.native_sg.clear();
        if let Some(t) = self.session_timers {
            for ps in self.sessions.values_mut() {
                *ps = PeerSession::new(t);
            }
            // Routes learned before the crash are flushed; peers
            // resync them after the sessions re-establish.
            let pairs: Vec<(RouterId, RouterId)> = self.sessions.keys().copied().collect();
            for (router, peer) in pairs {
                self.bgp_event(ctx, router, BgpEvent::PeerDown(peer));
            }
        }
        // Timers armed before the crash were suppressed while the node
        // was down: re-arm the MASC pump and the session tick (whose
        // membership refresh re-joins member groups once resync has
        // restored the routes).
        self.masc_scheduled.clear();
        self.pump_masc(ctx);
        if self.session_timers.is_some() {
            ctx.set_timer(SimDuration::from_secs(1), KEY_SESSION_TICK);
        }
    }
}

// ----------------------------------------------------------------------
// Snapshot support
// ----------------------------------------------------------------------

impl snapshot::Snapshot for HostId {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u32(self.domain);
        enc.u32(self.host);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(HostId {
            domain: dec.u32()?,
            host: dec.u32()?,
        })
    }
}

impl snapshot::Snapshot for DataPacket {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.source.encode(enc);
        self.group.encode(enc);
        enc.u64(self.id);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(DataPacket {
            source: SourceId::decode(dec)?,
            group: McastAddr::decode(dec)?,
            id: dec.u64()?,
        })
    }
}

impl snapshot::Snapshot for Wire {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            Wire::Bgp { from, to, msg } => {
                enc.u8(0);
                enc.u32(*from);
                enc.u32(*to);
                msg.encode(enc);
            }
            Wire::Bgmp { from, to, msg } => {
                enc.u8(1);
                enc.u32(*from);
                enc.u32(*to);
                msg.encode(enc);
            }
            Wire::Masc { from, msg } => {
                enc.u8(2);
                enc.u32(*from);
                msg.encode(enc);
            }
            Wire::Data { from, to, packet } => {
                enc.u8(3);
                enc.u32(*from);
                enc.u32(*to);
                packet.encode(enc);
            }
            Wire::HostJoin { host, group } => {
                enc.u8(4);
                host.encode(enc);
                group.encode(enc);
            }
            Wire::HostLeave { host, group } => {
                enc.u8(5);
                host.encode(enc);
                group.encode(enc);
            }
            Wire::PeerLinkDown { router, peer } => {
                enc.u8(6);
                enc.u32(*router);
                enc.u32(*peer);
            }
            Wire::PeerLinkUp { router, peer } => {
                enc.u8(7);
                enc.u32(*router);
                enc.u32(*peer);
            }
            Wire::Keepalive { from, to, gen } => {
                enc.u8(8);
                enc.u32(*from);
                enc.u32(*to);
                enc.u64(*gen);
            }
            Wire::BgpRefresh { from, to } => {
                enc.u8(9);
                enc.u32(*from);
                enc.u32(*to);
            }
            Wire::SendData { host, group, id } => {
                enc.u8(10);
                host.encode(enc);
                group.encode(enc);
                enc.u64(*id);
            }
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(Wire::Bgp {
                from: dec.u32()?,
                to: dec.u32()?,
                msg: BgpMsg::decode(dec)?,
            }),
            1 => Ok(Wire::Bgmp {
                from: dec.u32()?,
                to: dec.u32()?,
                msg: BgmpMsg::decode(dec)?,
            }),
            2 => Ok(Wire::Masc {
                from: dec.u32()?,
                msg: MascMsg::decode(dec)?,
            }),
            3 => Ok(Wire::Data {
                from: dec.u32()?,
                to: dec.u32()?,
                packet: DataPacket::decode(dec)?,
            }),
            4 => Ok(Wire::HostJoin {
                host: HostId::decode(dec)?,
                group: McastAddr::decode(dec)?,
            }),
            5 => Ok(Wire::HostLeave {
                host: HostId::decode(dec)?,
                group: McastAddr::decode(dec)?,
            }),
            6 => Ok(Wire::PeerLinkDown {
                router: dec.u32()?,
                peer: dec.u32()?,
            }),
            7 => Ok(Wire::PeerLinkUp {
                router: dec.u32()?,
                peer: dec.u32()?,
            }),
            8 => Ok(Wire::Keepalive {
                from: dec.u32()?,
                to: dec.u32()?,
                gen: dec.u64()?,
            }),
            9 => Ok(Wire::BgpRefresh {
                from: dec.u32()?,
                to: dec.u32()?,
            }),
            10 => Ok(Wire::SendData {
                host: HostId::decode(dec)?,
                group: McastAddr::decode(dec)?,
                id: dec.u64()?,
            }),
            _ => Err(snapshot::SnapError::Invalid("Wire tag")),
        }
    }
}

impl snapshot::Snapshot for DeliveryLog {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.received.encode(enc);
        enc.u64(self.duplicates);
        enc.u64(self.dropped);
        enc.u64(self.encapsulations);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(DeliveryLog {
            received: snapshot::Snapshot::decode(dec)?,
            duplicates: dec.u64()?,
            dropped: dec.u64()?,
            encapsulations: dec.u64()?,
        })
    }
}

impl snapshot::Snapshot for PeerSession {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.sess.encode(enc);
        self.peer_gen.encode(enc);
        enc.u64(self.local_epoch);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(PeerSession {
            sess: Session::decode(dec)?,
            peer_gen: snapshot::Snapshot::decode(dec)?,
            local_epoch: dec.u64()?,
        })
    }
}

impl snapshot::SnapshotState for DomainActor {
    /// Everything routed or learned since boot: every border router's
    /// BGP and BGMP state, MIGP membership, the MASC node, host
    /// membership, delivery accounting, encapsulation caches, session
    /// liveness, and the boot generation. Wiring (`own_routers`,
    /// `router_index`, `peer_node`, `domain_node`) and configuration
    /// (`static_range`, `session_timers`, router identities, the MIGP
    /// kind) come from the rebuilt topology.
    fn encode_state(&self, enc: &mut snapshot::Enc) {
        use snapshot::Snapshot;
        enc.seq(self.routers.len());
        for r in &self.routers {
            r.speaker.encode_state(enc);
            r.bgmp.encode_state(enc);
        }
        self.migp.membership().encode(enc);
        match &self.masc {
            Some(node) => {
                enc.u8(1);
                node.encode_state(enc);
            }
            None => enc.u8(0),
        }
        self.members.encode(enc);
        self.log.encode(enc);
        self.seen.encode(enc);
        self.encap_from.encode(enc);
        self.native_sg.encode(enc);
        enc.bool(self.source_branches);
        self.masc_scheduled.encode(enc);
        self.masc_outbox.encode(enc);
        enc.u64(self.static_next);
        self.sessions.encode(enc);
        enc.u64(self.boot_gen);
    }

    fn restore_state(&mut self, dec: &mut snapshot::Dec<'_>) -> Result<(), snapshot::SnapError> {
        use snapshot::Snapshot;
        let n = dec.seq()?;
        if n != self.routers.len() {
            return Err(snapshot::SnapError::Invalid(
                "border router count differs from snapshot",
            ));
        }
        for r in &mut self.routers {
            r.speaker.restore_state(dec)?;
            r.bgmp.restore_state(dec)?;
        }
        *self.migp.membership_mut() = Snapshot::decode(dec)?;
        match (dec.u8()?, &mut self.masc) {
            (1, Some(node)) => node.restore_state(dec)?,
            (0, None) => {}
            _ => {
                return Err(snapshot::SnapError::Invalid(
                    "MASC presence differs from snapshot",
                ))
            }
        }
        self.members = Snapshot::decode(dec)?;
        self.log = DeliveryLog::decode(dec)?;
        self.seen = Snapshot::decode(dec)?;
        self.encap_from = Snapshot::decode(dec)?;
        self.native_sg = Snapshot::decode(dec)?;
        self.source_branches = dec.bool()?;
        self.masc_scheduled = Snapshot::decode(dec)?;
        self.masc_outbox = Snapshot::decode(dec)?;
        self.static_next = dec.u64()?;
        self.sessions = Snapshot::decode(dec)?;
        self.boot_gen = dec.u64()?;
        Ok(())
    }
}
