//! Extraction and verification of protocol-built state.
//!
//! These helpers read the (*,G)/(S,G) state out of a running
//! [`Internet`](crate::internet::Internet) and check the invariants the
//! architecture promises: the per-group state forms a tree rooted at
//! the group's root domain, every member domain is on it, and G-RIB
//! sizes can be measured per router (figure 2(b)'s metric at the
//! protocol level).

use std::collections::{BTreeMap, BTreeSet};

use bgmp::Target;
use bgp::RouterId;
use mcast_addr::McastAddr;
use topology::DomainId;

use crate::internet::Internet;

/// The inter-domain edges of a group's shared tree, as (child domain,
/// parent domain) pairs extracted from (*,G) parent targets.
pub fn shared_tree_edges(net: &Internet, g: McastAddr) -> Vec<(DomainId, DomainId)> {
    let mut router_domain: BTreeMap<RouterId, DomainId> = BTreeMap::new();
    for d in net.graph.domains() {
        for br in &net.domain(d).routers {
            router_domain.insert(br.id, d);
        }
    }
    let mut edges = BTreeSet::new();
    for d in net.graph.domains() {
        for br in &net.domain(d).routers {
            if let Some(e) = br.bgmp.table().star_exact(g) {
                if let Some(Target::Peer(p)) = e.parent {
                    let pd = router_domain[&p];
                    if pd != d {
                        edges.insert((d, pd));
                    }
                }
            }
        }
    }
    edges.into_iter().collect()
}

/// Domains holding any (*,G) state for the group.
pub fn on_tree_domains(net: &Internet, g: McastAddr) -> Vec<DomainId> {
    net.graph
        .domains()
        .filter(|d| {
            net.domain(*d)
                .routers
                .iter()
                .any(|br| br.bgmp.table().star_exact(g).is_some())
        })
        .collect()
}

/// Problems found by [`verify_tree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeViolation {
    /// A domain has two different parent domains for the group.
    TwoParents(DomainId),
    /// Following parents from this domain never reaches the root.
    NotRootedAt(DomainId),
    /// A member domain holds no tree state.
    MemberOffTree(DomainId),
}

/// Verifies that the group's inter-domain state is a tree rooted at
/// `root`, containing every domain in `members`.
pub fn verify_tree(
    net: &Internet,
    g: McastAddr,
    root: DomainId,
    members: &[DomainId],
) -> Vec<TreeViolation> {
    let edges = shared_tree_edges(net, g);
    let mut violations = Vec::new();
    let mut parent: BTreeMap<DomainId, DomainId> = BTreeMap::new();
    for (c, p) in &edges {
        if parent.insert(*c, *p).is_some_and(|prev| prev != *p) {
            violations.push(TreeViolation::TwoParents(*c));
        }
    }
    let on_tree: BTreeSet<DomainId> = on_tree_domains(net, g).into_iter().collect();
    for m in members {
        if !on_tree.contains(m) && *m != root {
            violations.push(TreeViolation::MemberOffTree(*m));
        }
    }
    // Every on-tree domain must reach the root by parent pointers
    // without cycles.
    for d in &on_tree {
        let mut cur = *d;
        let mut steps = 0;
        loop {
            if cur == root {
                break;
            }
            match parent.get(&cur) {
                Some(p) => cur = *p,
                None => {
                    // A domain whose every router has a Migp/None
                    // parent but is not the root is dangling.
                    if cur != root {
                        violations.push(TreeViolation::NotRootedAt(*d));
                    }
                    break;
                }
            }
            steps += 1;
            if steps > net.graph.len() {
                violations.push(TreeViolation::NotRootedAt(*d));
                break;
            }
        }
    }
    violations
}

/// Per-router G-RIB sizes across the internet (figure 2(b) at the
/// protocol level).
pub fn grib_sizes(net: &Internet) -> Vec<usize> {
    let mut out = Vec::new();
    for d in net.graph.domains() {
        for br in &net.domain(d).routers {
            out.push(br.speaker.rib().grib_size());
        }
    }
    out
}

/// Total (*,G) forwarding entries across all routers (the state-scaling
/// metric of §7).
pub fn total_star_entries(net: &Internet, g: Option<McastAddr>) -> usize {
    let mut n = 0;
    for d in net.graph.domains() {
        for br in &net.domain(d).routers {
            match g {
                Some(g) => {
                    if br.bgmp.table().star_exact(g).is_some() {
                        n += 1;
                    }
                }
                None => n += br.bgmp.table().star_len(),
            }
        }
    }
    n
}

/// The inter-domain hop count of the path packet `id` took to reach
/// each receiving host cannot be read off the log directly; instead the
/// harnesses compare *who* received against membership. This helper
/// checks exact-once delivery to the expected hosts.
pub fn delivered_exactly(net: &Internet, id: u64, expected: &[crate::domain::HostId]) -> bool {
    let got = net.deliveries(id);
    let mut want: Vec<crate::domain::HostId> = expected.to_vec();
    want.sort();
    want.dedup();
    got == want && net.total_duplicates() == 0
}
