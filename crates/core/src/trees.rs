//! Analytic inter-domain distribution-tree construction — the figure-4
//! machinery.
//!
//! The paper compares path lengths (in inter-domain hops) between a
//! random source and growing receiver sets on four tree types (§5.4):
//!
//! * **shortest-path trees** (DVMRP/PIM-DM/MOSPF behaviour) — the
//!   baseline, ratio 1.0;
//! * **unidirectional shared trees** (PIM-SM): data travels source →
//!   RP → receiver;
//! * **bidirectional shared trees** (BGMP/CBT): receivers join toward
//!   the root domain; senders forward toward the root until they meet
//!   the tree; data then flows along the tree in both directions;
//! * **hybrid trees** (BGMP + source-specific branches, §5.3):
//!   receivers additionally pull a branch toward the source that stops
//!   at the shared tree or the source domain.
//!
//! These builders apply the same next-hop-toward-root logic as the
//! protocol engine (joins follow BFS parents toward the root domain,
//! exactly what the G-RIB yields on these topologies); an integration
//! test cross-validates them against protocol-built trees on small
//! graphs.

use topology::{bfs, DomainGraph, DomainId, SpTree};

/// A bidirectional shared tree rooted at a root domain.
#[derive(Debug, Clone)]
pub struct BidirTree {
    /// The root domain.
    pub root: DomainId,
    /// BFS routing state toward the root (shared by all domains).
    toward_root: SpTree,
    /// `depth[d]` = hops from `d` to the root along the tree, only
    /// meaningful for on-tree domains.
    depth: Vec<u32>,
    /// Whether each domain is on the tree.
    on_tree: Vec<bool>,
}

impl BidirTree {
    /// Builds the shared tree for `members` joining toward `root`.
    /// Each member joins along the (deterministic) shortest path —
    /// what BGMP joins following the G-RIB produce.
    pub fn build(g: &DomainGraph, root: DomainId, members: &[DomainId]) -> Self {
        let toward_root = bfs(g, root);
        let mut on_tree = vec![false; g.len()];
        on_tree[root.0] = true;
        for &m in members {
            let mut cur = m;
            while !on_tree[cur.0] {
                on_tree[cur.0] = true;
                match toward_root.toward_src[cur.0] {
                    Some(next) => cur = next,
                    None => break, // disconnected; tree dangles
                }
            }
        }
        let depth = toward_root.dist.clone();
        BidirTree {
            root,
            toward_root,
            depth,
            on_tree,
        }
    }

    /// Is `d` on the tree?
    pub fn contains(&self, d: DomainId) -> bool {
        self.on_tree[d.0]
    }

    /// Number of on-tree domains.
    pub fn size(&self) -> usize {
        self.on_tree.iter().filter(|b| **b).count()
    }

    /// Walks from `from` toward the root until reaching the tree.
    /// Returns (entry domain, hops walked). A domain already on the
    /// tree enters immediately.
    pub fn entry_from(&self, from: DomainId) -> Option<(DomainId, u32)> {
        let mut cur = from;
        let mut hops = 0;
        while !self.on_tree[cur.0] {
            cur = self.toward_root.toward_src[cur.0]?;
            hops += 1;
        }
        Some((cur, hops))
    }

    /// Hop distance between two on-tree domains *along the tree*.
    /// The tree is a union of root-paths, so the path goes through the
    /// lowest common ancestor: `depth(a) + depth(b) - 2·depth(lca)`.
    pub fn tree_dist(&self, a: DomainId, b: DomainId) -> Option<u32> {
        if !self.on_tree[a.0] || !self.on_tree[b.0] {
            return None;
        }
        let lca = self.lca(a, b)?;
        Some(self.depth[a.0] + self.depth[b.0] - 2 * self.depth[lca.0])
    }

    fn lca(&self, a: DomainId, b: DomainId) -> Option<DomainId> {
        let (mut x, mut y) = (a, b);
        // Standard two-pointer LCA on parent pointers with depths.
        while self.depth[x.0] > self.depth[y.0] {
            x = self.toward_root.toward_src[x.0]?;
        }
        while self.depth[y.0] > self.depth[x.0] {
            y = self.toward_root.toward_src[y.0]?;
        }
        while x != y {
            x = self.toward_root.toward_src[x.0]?;
            y = self.toward_root.toward_src[y.0]?;
        }
        Some(x)
    }

    /// Data-path length from a (possibly off-tree, non-member) sender
    /// domain to an on-tree receiver: forward toward the root until
    /// meeting the tree, then along the tree (§5: "the border router
    /// simply forwards the data packets towards the root domain, and
    /// when they reach a router that is on the group's shared tree,
    /// they are distributed to the members").
    pub fn sender_path_len(&self, sender: DomainId, receiver: DomainId) -> Option<u32> {
        let (entry, approach) = self.entry_from(sender)?;
        Some(approach + self.tree_dist(entry, receiver)?)
    }
}

/// Per-receiver path lengths from one sender on each tree type.
#[derive(Debug, Clone)]
pub struct PathLengths {
    /// Shortest-path (baseline) hops per receiver.
    pub spt: Vec<u32>,
    /// Unidirectional shared-tree hops per receiver.
    pub unidirectional: Vec<u32>,
    /// Bidirectional shared-tree hops per receiver.
    pub bidirectional: Vec<u32>,
    /// Hybrid (bidirectional + source-specific branches) hops.
    pub hybrid: Vec<u32>,
}

impl PathLengths {
    /// Mean ratio of a series against the SPT baseline. Pairs with a
    /// zero SPT distance (receiver == sender) are skipped.
    pub fn avg_ratio(&self, series: &[u32]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0;
        for (s, v) in self.spt.iter().zip(series) {
            if *s > 0 {
                sum += *v as f64 / *s as f64;
                n += 1;
            }
        }
        if n == 0 {
            1.0
        } else {
            sum / n as f64
        }
    }

    /// Max ratio of a series against the SPT baseline.
    pub fn max_ratio(&self, series: &[u32]) -> f64 {
        self.spt
            .iter()
            .zip(series)
            .filter(|(s, _)| **s > 0)
            .map(|(s, v)| *v as f64 / *s as f64)
            .fold(1.0, f64::max)
    }
}

/// [`compare_trees`] plus the by-products the architecture ablation
/// needs: the shared tree's size (BGMP per-group state = on-tree
/// routers) and the source's BFS tree (BIER / map-and-encap both ride
/// unicast shortest paths, so their per-receiver hop counts and
/// link-copy costs derive from it with no extra BFS).
#[derive(Debug, Clone)]
pub struct TreeComparison {
    /// Per-receiver path lengths on the four tree types.
    pub paths: PathLengths,
    /// Routers on the bidirectional shared tree (G-RIB entries the
    /// group costs under BGMP).
    pub shared_tree_size: usize,
    /// BFS shortest-path tree from the source.
    pub from_source: SpTree,
}

/// Computes path lengths from `source` to every receiver on all four
/// tree types.
///
/// * `root` — the group's root domain (BGMP: the group initiator's
///   domain, §5.1).
/// * `rp` — the unidirectional tree's rendezvous domain (PIM-SM: a
///   hash-selected router, i.e. effectively a random third party,
///   §5.1).
pub fn compare_trees(
    g: &DomainGraph,
    source: DomainId,
    receivers: &[DomainId],
    root: DomainId,
    rp: DomainId,
) -> PathLengths {
    compare_trees_full(g, source, receivers, root, rp).paths
}

/// [`compare_trees`] returning the full [`TreeComparison`].
pub fn compare_trees_full(
    g: &DomainGraph,
    source: DomainId,
    receivers: &[DomainId],
    root: DomainId,
    rp: DomainId,
) -> TreeComparison {
    let from_source = bfs(g, source);
    let from_rp = bfs(g, rp);

    // Shared tree: receivers join toward the root. The root domain
    // itself is on the tree by construction; the paper roots the tree
    // at the initiator's domain, which we treat as a member.
    let bidir = BidirTree::build(g, root, receivers);

    let mut spt = Vec::with_capacity(receivers.len());
    let mut uni = Vec::with_capacity(receivers.len());
    let mut bi = Vec::with_capacity(receivers.len());
    let mut hy = Vec::with_capacity(receivers.len());

    // The sender's entry point onto the shared tree.
    let (entry, approach) = bidir.entry_from(source).expect("connected graph");

    for &r in receivers {
        let d_spt = from_source.dist_to(r).expect("connected");
        spt.push(d_spt);

        // Unidirectional: source → RP → receiver (§5.2: "data from
        // senders has to travel up to the root and then down the
        // shared tree to all the members").
        let d_uni =
            from_source.dist_to(rp).expect("connected") + from_rp.dist_to(r).expect("connected");
        uni.push(d_uni);

        // Bidirectional: toward the root until the tree, then along it.
        let d_bi = approach + bidir.tree_dist(entry, r).expect("receiver on tree");
        bi.push(d_bi);

        // Hybrid: the receiver's border router sends a source-specific
        // join along its shortest path toward the source; the join
        // propagates "until it hits either a branch of the
        // bidirectional tree or the source domain" (§5.3). The
        // receiver itself is on the tree, so the walk starts with the
        // first hop *away* from r. S's data reaches the branch head u
        // over the shared tree (or directly when u is the source),
        // then flows down the branch to r.
        let mut u = r;
        while u != source {
            let Some(next) = from_source.toward_src[u.0] else {
                break;
            };
            u = next;
            if u == source || bidir.contains(u) {
                break;
            }
        }
        let d_u_r = from_source.dist_to(r).unwrap() - from_source.dist_to(u).unwrap();
        let d_src_u = if u == source {
            0
        } else {
            // Data flows to u along the bidirectional tree.
            approach + bidir.tree_dist(entry, u).expect("u on tree")
        };
        // Building the branch is the *option* of the receiving domain
        // (§5.3); a domain whose shared-tree path is already at least
        // as short keeps it, so the effective hybrid path is the
        // better of the two.
        hy.push((d_src_u + d_u_r).min(d_bi));
    }

    TreeComparison {
        paths: PathLengths {
            spt,
            unidirectional: uni,
            bidirectional: bi,
            hybrid: hy,
        },
        shared_tree_size: bidir.size(),
        from_source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{hierarchical, internet_like, HierSpec, InternetSpec};

    fn line_graph(n: usize) -> DomainGraph {
        let mut g = DomainGraph::new();
        let ids: Vec<DomainId> = (0..n).map(|i| g.add_domain(format!("D{i}"))).collect();
        for w in ids.windows(2) {
            g.add_provider_customer(w[0], w[1]);
        }
        g
    }

    #[test]
    fn bidir_tree_on_line() {
        let g = line_graph(6);
        // Root at 0; members 3 and 5.
        let t = BidirTree::build(&g, DomainId(0), &[DomainId(3), DomainId(5)]);
        assert!(t.contains(DomainId(0)));
        assert!(t.contains(DomainId(2)));
        assert!(t.contains(DomainId(5)));
        assert_eq!(t.size(), 6);
        assert_eq!(t.tree_dist(DomainId(3), DomainId(5)), Some(2));
        assert_eq!(t.tree_dist(DomainId(0), DomainId(5)), Some(5));
        // Sender at 4 (on-tree): direct along the tree to 3.
        assert_eq!(t.sender_path_len(DomainId(4), DomainId(3)), Some(1));
    }

    #[test]
    fn bidir_avoids_root_detour() {
        // Star: root at the hub; members on two spokes. Data between
        // two members crosses the hub once — no unidirectional
        // up-then-down double-charge.
        let mut g = DomainGraph::new();
        let hub = g.add_domain("hub");
        let spokes: Vec<DomainId> = (0..4)
            .map(|i| {
                let s = g.add_domain(format!("s{i}"));
                g.add_provider_customer(hub, s);
                s
            })
            .collect();
        let t = BidirTree::build(&g, hub, &spokes[..2]);
        assert_eq!(t.tree_dist(spokes[0], spokes[1]), Some(2));
        // Off-tree sender walks to the hub first.
        assert_eq!(t.sender_path_len(spokes[3], spokes[0]), Some(2));
    }

    #[test]
    fn compare_trees_on_line_shapes() {
        let g = line_graph(8);
        // Source at 0; root at 7 (worst case: far end); RP at 7 too.
        let receivers = [DomainId(1), DomainId(2)];
        let pl = compare_trees(&g, DomainId(0), &receivers, DomainId(7), DomainId(7));
        assert_eq!(pl.spt, vec![1, 2]);
        // Unidirectional: 0→7 (7 hops) + 7→r.
        assert_eq!(pl.unidirectional, vec![7 + 6, 7 + 5]);
        // Bidirectional on a line: everything is on the path; data
        // goes directly.
        assert_eq!(pl.bidirectional, vec![1, 2]);
        // Hybrid can't beat SPT.
        assert_eq!(pl.hybrid, vec![1, 2]);
        assert!(pl.avg_ratio(&pl.unidirectional) > pl.avg_ratio(&pl.bidirectional));
        assert!((pl.avg_ratio(&pl.bidirectional) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hybrid_never_worse_than_bidirectional_and_never_better_than_spt() {
        let g = internet_like(&InternetSpec {
            n: 300,
            backbones: 5,
            attach: 2,
            extra_peerings: 8,
            seed: 3,
        });
        let receivers: Vec<DomainId> = (10..60).map(DomainId).collect();
        let pl = compare_trees(&g, DomainId(99), &receivers, DomainId(10), DomainId(200));
        for i in 0..receivers.len() {
            assert!(pl.hybrid[i] >= pl.spt[i], "hybrid below SPT at {i}");
            assert!(
                pl.hybrid[i] <= pl.bidirectional[i],
                "branch made things worse at {i}"
            );
            assert!(pl.bidirectional[i] >= pl.spt[i]);
        }
    }

    #[test]
    fn unidirectional_is_worst_on_average_at_scale() {
        // The headline figure-4 ordering on a realistic topology.
        let g = internet_like(&InternetSpec {
            n: 600,
            backbones: 6,
            attach: 2,
            extra_peerings: 10,
            seed: 11,
        });
        let receivers: Vec<DomainId> = (20..220).map(DomainId).collect();
        // Root = first receiver's domain (initiator), RP = third party.
        let pl = compare_trees(&g, DomainId(400), &receivers, DomainId(20), DomainId(555));
        let uni = pl.avg_ratio(&pl.unidirectional);
        let bi = pl.avg_ratio(&pl.bidirectional);
        let hy = pl.avg_ratio(&pl.hybrid);
        assert!(
            uni > bi,
            "unidirectional {uni} must exceed bidirectional {bi}"
        );
        assert!(bi >= hy, "bidirectional {bi} must be ≥ hybrid {hy}");
        assert!(hy >= 1.0);
    }

    #[test]
    fn full_comparison_exposes_tree_size_and_source_spt() {
        let g = line_graph(8);
        let receivers = [DomainId(1), DomainId(2)];
        let tc = compare_trees_full(&g, DomainId(0), &receivers, DomainId(7), DomainId(7));
        // Members 1, 2 join toward root 7: the tree spans 1..=7.
        assert_eq!(tc.shared_tree_size, 7);
        assert_eq!(tc.from_source.src, DomainId(0));
        assert_eq!(tc.from_source.dist_to(DomainId(5)), Some(5));
        // The wrapper returns exactly the full version's paths.
        let pl = compare_trees(&g, DomainId(0), &receivers, DomainId(7), DomainId(7));
        assert_eq!(pl.spt, tc.paths.spt);
        assert_eq!(pl.bidirectional, tc.paths.bidirectional);
    }

    #[test]
    fn member_domain_sender_uses_tree_directly() {
        let h = hierarchical(&HierSpec {
            fanouts: vec![3, 3],
            mesh_top: true,
        });
        let g = &h.graph;
        let members = [h.levels[1][0], h.levels[1][4]];
        let root = h.levels[1][0];
        let t = BidirTree::build(g, root, &members);
        // A member sends: entry is itself, zero approach.
        let (e, a) = t.entry_from(members[1]).unwrap();
        assert_eq!(e, members[1]);
        assert_eq!(a, 0);
    }
}
