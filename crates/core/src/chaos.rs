//! Deterministic chaos harness: a full-protocol internet under a
//! seed-derived fault schedule.
//!
//! One [`run_chaos`] call builds a ring of domains (two disjoint paths
//! between every pair, so single failures always leave an alternate),
//! subscribes a member in every domain to one group, then drives a
//! chaos phase combining:
//!
//! - per-message loss/duplication/jitter on every inter-domain link
//!   (the engine's fault plane, drawn from the engine's seeded RNG),
//! - silent link flaps (no control event — session hold timers must
//!   *detect* them),
//! - fail-stop node crashes with restart (volatile state wiped,
//!   recovered through `DomainActor::on_restart`).
//!
//! The schedule itself is derived from the config seed with a
//! dedicated seeded RNG, so the whole run — schedule, fault draws,
//! repairs — is byte-reproducible: [`ChaosOutcome::fingerprint`]
//! hashes every router's forwarding state, RIB sizes, delivery log and
//! fault counters, and must be identical across reruns and across
//! harness thread counts for a fixed seed.
//!
//! Mid-run, [`invariants::check_running`] is asserted after every
//! fault event; after the faults cease the harness polls
//! [`invariants::check_quiescent`] to measure re-convergence time.

use bgp::session::SessionTimers;
use mcast_addr::McastAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{FaultModel, FaultStats, SimDuration};
use topology::{DomainGraph, DomainId};

use crate::domain::{HostId, Wire};
use crate::internet::{asn_of, Addressing, BorderPlan, Internet, InternetConfig};
use crate::invariants;

/// Configuration of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Ring size (domains). Must be at least 4.
    pub domains: usize,
    /// Per-message loss probability on faultable traffic.
    pub loss: f64,
    /// Per-message duplication probability.
    pub dup: f64,
    /// Bounded re-enqueue jitter (ms) applied to faulted messages.
    pub jitter_ms: u64,
    /// Number of silent link flaps during the chaos phase.
    pub flaps: usize,
    /// Number of fail-stop crash/restart events.
    pub crashes: usize,
    /// Length of the chaos phase (seconds).
    pub chaos_secs: u64,
    /// Master seed: drives the schedule and the engine RNG.
    pub seed: u64,
    /// Assert `check_running` after every fault event (panics on
    /// violation when enabled).
    pub check_mid_run: bool,
    /// Engine shards (see [`InternetConfig::shards`]): `0` = legacy
    /// serial engine; `≥ 1` = sharded, byte-identical across counts.
    pub shards: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            domains: 6,
            loss: 0.10,
            dup: 0.05,
            jitter_ms: 40,
            flaps: 5,
            crashes: 1,
            chaos_secs: 120,
            seed: 1,
            check_mid_run: true,
            shards: 0,
        }
    }
}

/// Result of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Packets sent during the chaos phase.
    pub sent: u64,
    /// Member deliveries of chaos-phase packets.
    pub delivered: u64,
    /// Member deliveries expected had no packet been disturbed.
    pub expected: u64,
    /// `delivered / expected` (1.0 = nothing lost end-to-end).
    pub delivery_ratio: f64,
    /// Time from fault cessation until `check_quiescent` came back
    /// clean, in ms of simulated time (`None` = never within the
    /// polling horizon — a real invariant failure).
    pub convergence_ms: Option<u64>,
    /// Invariant violations still present at the end of the run.
    pub quiescent_violations: Vec<invariants::Violation>,
    /// Whether the final post-quiesce probe packet reached every
    /// member exactly once.
    pub probe_clean: bool,
    /// Fault-plane counters (loss/dup/jitter/crash totals).
    pub fault_stats: FaultStats,
    /// Order-sensitive hash of all protocol state, logs and counters:
    /// equal fingerprints mean byte-identical runs.
    pub fingerprint: u64,
    /// Engine events processed over the whole scenario (deterministic
    /// for a fixed config; the perf harness's work-unit count).
    pub events: u64,
}

/// What the schedule applies at a point in simulated time.
#[derive(Debug, Clone, Copy)]
enum FaultEvent {
    /// Silently cut the ring edge (i, i+1).
    Cut(usize),
    /// Silently restore it.
    Restore(usize),
    /// Send a data packet from a host in the domain.
    Send(DomainId),
}

/// One link-flap window: ring edge `(i, i+1 mod n)` is silently down
/// during `[at, at + dur)` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFlap {
    /// Ring edge index (connects domain `edge` and `(edge + 1) % n`).
    pub edge: usize,
    /// Start second.
    pub at: u64,
    /// Duration in seconds.
    pub dur: u64,
}

/// One fail-stop crash window: domain index `domain` is down during
/// `[at, at + down)` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledCrash {
    /// Domain index into the ring.
    pub domain: usize,
    /// Start second.
    pub at: u64,
    /// Outage length in seconds.
    pub down: u64,
}

/// The seed-derived fault + traffic schedule of one chaos run,
/// extracted so other planes (the BIER replay in `ablation_faults`)
/// can face the *same* flaps, crashes and sends as the BGMP stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// Link flap windows, in draw order.
    pub flaps: Vec<ScheduledFlap>,
    /// Crash windows, in draw order.
    pub crashes: Vec<ScheduledCrash>,
    /// Timed sends `(second, domain index)`, in time order.
    pub sends: Vec<(u64, usize)>,
    /// Chaos-phase length in seconds (`chaos_secs`, min 60).
    pub horizon: u64,
}

/// The ring topology every chaos run uses: two disjoint paths between
/// every pair, so single failures always leave an alternate. Domain
/// `i` is `DomainId(i)`.
pub fn ring_graph(n: usize) -> DomainGraph {
    let mut graph = DomainGraph::new();
    let ids: Vec<DomainId> = (0..n).map(|i| graph.add_domain(format!("D{i}"))).collect();
    for i in 0..n {
        graph.add_peering(ids[i], ids[(i + 1) % n]);
    }
    graph
}

/// Derives the fault schedule from the config seed. Pure function of
/// the config; [`run_chaos`] consumes exactly this schedule, with the
/// RNG draws in the same order they have been since the harness was
/// introduced (so extracting it changed no goldens).
pub fn derive_schedule(cfg: &ChaosConfig) -> ChaosSchedule {
    let n = cfg.domains;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let horizon = cfg.chaos_secs.max(60);
    let mut flaps = Vec::with_capacity(cfg.flaps);
    for _ in 0..cfg.flaps {
        let edge = rng.gen_range(0..n);
        let at = rng.gen_range(5..horizon.saturating_sub(30).max(6));
        let dur: u64 = rng.gen_range(8..=20);
        flaps.push(ScheduledFlap { edge, at, dur });
    }
    let mut crashes = Vec::with_capacity(cfg.crashes);
    for i in 0..cfg.crashes {
        // Crash any non-root domain; keep outages longer than the
        // hold time so every neighbour notices organically (shorter
        // ones are caught by the boot-generation bounce instead).
        let domain = rng.gen_range(1..n);
        let at = rng.gen_range(10..horizon / 2 + 10 + i as u64);
        let down = rng.gen_range(18..=30);
        crashes.push(ScheduledCrash { domain, at, down });
    }
    let mut sends = Vec::new();
    let mut t = 4;
    let mut k = 0usize;
    while t < horizon {
        sends.push((t, (k * 7 + 3) % n));
        t += 2;
        k += 1;
    }
    ChaosSchedule {
        flaps,
        crashes,
        sends,
        horizon,
    }
}

fn fnv_u64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Hashes every router's forwarding state, G-RIB size, the delivery
/// logs and the fault counters into one order-sensitive fingerprint.
pub fn state_fingerprint(net: &Internet) -> u64 {
    use bgmp::Target;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fnv_u64(&mut h, net.engine.now().as_millis());
    let target_code = |t: &Target| -> (u64, u64) {
        match t {
            Target::Peer(r) => (1, *r as u64),
            Target::Migp => (2, 0),
        }
    };
    for d in net.graph.domains() {
        let actor = net.domain(d);
        for br in &actor.routers {
            fnv_u64(&mut h, br.id as u64);
            fnv_u64(&mut h, br.speaker.rib().grib_size() as u64);
            for (p, e) in br.bgmp.table().star_entries() {
                fnv_u64(&mut h, p.base().0 as u64);
                fnv_u64(&mut h, p.len() as u64);
                let (c, v) = e.parent.as_ref().map(target_code).unwrap_or((0, 0));
                fnv_u64(&mut h, c);
                fnv_u64(&mut h, v);
                fnv_u64(&mut h, e.via_exit.map(|r| r as u64 + 1).unwrap_or(0));
                for t in &e.children {
                    let (c, v) = target_code(t);
                    fnv_u64(&mut h, c);
                    fnv_u64(&mut h, v);
                }
            }
            for (&(s, g), e) in br.bgmp.table().sg_entries() {
                fnv_u64(&mut h, s.domain as u64);
                fnv_u64(&mut h, s.host as u64);
                fnv_u64(&mut h, g.0 as u64);
                let (c, v) = e.parent.as_ref().map(target_code).unwrap_or((0, 0));
                fnv_u64(&mut h, c);
                fnv_u64(&mut h, v);
                for t in &e.children {
                    let (c, v) = target_code(t);
                    fnv_u64(&mut h, c);
                    fnv_u64(&mut h, v);
                }
            }
        }
        for (id, host) in &actor.log.received {
            fnv_u64(&mut h, *id);
            fnv_u64(&mut h, host.domain as u64);
            fnv_u64(&mut h, host.host as u64);
        }
        fnv_u64(&mut h, actor.log.duplicates);
        fnv_u64(&mut h, actor.log.dropped);
        fnv_u64(&mut h, actor.log.encapsulations);
    }
    let fs = net.engine.faults().stats();
    for v in [
        fs.lost,
        fs.duplicated,
        fs.jittered,
        fs.dropped_at_down_node,
        fs.timers_suppressed,
        fs.crashes,
        fs.restarts,
    ] {
        fnv_u64(&mut h, v);
    }
    fnv_u64(&mut h, net.engine.stats().delivered);
    h
}

/// Fast session timers for chaos runs: failures are detected within
/// 15 s of simulated time and reconnects retried after 10 s.
pub fn chaos_session_timers() -> SessionTimers {
    SessionTimers {
        keepalive: 5,
        hold: 15,
        retry: 10,
    }
}

/// Runs one deterministic chaos scenario. See the module docs.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    assert!(cfg.domains >= 4, "ring needs at least 4 domains");
    let n = cfg.domains;
    let graph = ring_graph(n);
    let ids: Vec<DomainId> = graph.domains().collect();
    let icfg = InternetConfig {
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        sessions: Some(chaos_session_timers()),
        seed: cfg.seed,
        shards: cfg.shards,
        ..Default::default()
    };
    let mut net = Internet::build(graph, &icfg);
    // Reliable control planes ride TCP; keepalives and data feel the
    // network directly, which is exactly what the session machinery
    // and the tree repairs must cope with.
    net.engine.faults_mut().set_faultable(|m| {
        matches!(
            m,
            Wire::Keepalive { .. } | Wire::Data { .. } | Wire::Masc { .. }
        )
    });
    net.converge();

    // One group rooted in domain 0, one member host per domain.
    let g: McastAddr = net.group_addr(ids[0]);
    let members: Vec<HostId> = ids
        .iter()
        .map(|d| HostId {
            domain: asn_of(*d),
            host: 1,
        })
        .collect();
    for m in &members {
        net.host_join(*m, g);
    }
    net.converge();

    // ---- Seed-derived fault schedule --------------------------------
    let plan = derive_schedule(cfg);
    let t0 = net.engine.now();
    let horizon = plan.horizon;
    let mut schedule: Vec<(u64, FaultEvent)> = Vec::new();
    for f in &plan.flaps {
        schedule.push((f.at * 1000, FaultEvent::Cut(f.edge)));
        schedule.push(((f.at + f.dur) * 1000, FaultEvent::Restore(f.edge)));
    }
    for c in &plan.crashes {
        net.schedule_crash(
            ids[c.domain],
            SimDuration::from_secs(c.at),
            SimDuration::from_secs(c.down),
        );
    }
    for &(t, d) in &plan.sends {
        schedule.push((t * 1000, FaultEvent::Send(ids[d])));
    }
    schedule.sort_by_key(|(at, _)| *at);

    // ---- Chaos phase ------------------------------------------------
    net.engine.faults_mut().set_default_model(FaultModel {
        loss: cfg.loss,
        dup: cfg.dup,
        jitter_ms: cfg.jitter_ms,
    });
    let mut packet_ids = Vec::new();
    let mut cut_edges: Vec<usize> = Vec::new();
    for (at_ms, ev) in schedule {
        net.engine.run_until(t0 + SimDuration::from_millis(at_ms));
        match ev {
            FaultEvent::Cut(e) => {
                net.cut_link(ids[e], ids[(e + 1) % n]);
                cut_edges.push(e);
            }
            FaultEvent::Restore(e) => {
                net.restore_link(ids[e], ids[(e + 1) % n]);
                cut_edges.retain(|x| *x != e);
            }
            FaultEvent::Send(d) => {
                let host = HostId {
                    domain: asn_of(d),
                    host: 5,
                };
                packet_ids.push(net.send_data(host, g));
            }
        }
        if cfg.check_mid_run && !matches!(ev, FaultEvent::Send(_)) {
            let v = invariants::check_running(&net);
            assert!(v.is_empty(), "mid-run invariant violation: {v:?}");
        }
    }
    net.engine.run_until(t0 + SimDuration::from_secs(horizon));

    // ---- Quiesce ----------------------------------------------------
    net.engine.faults_mut().clear_models();
    for e in cut_edges {
        net.restore_link(ids[e], ids[(e + 1) % n]);
    }
    let mut convergence_ms = None;
    for step in 1..=40u64 {
        net.run_for(SimDuration::from_secs(5));
        if invariants::check_quiescent(&net).is_empty() {
            convergence_ms = Some(step * 5000);
            break;
        }
    }
    let quiescent_violations = invariants::check_quiescent(&net);

    // ---- Accounting -------------------------------------------------
    let sent = packet_ids.len() as u64;
    let mut delivered = 0u64;
    for id in &packet_ids {
        delivered += net.deliveries(*id).len() as u64;
    }
    // Every chaos packet, undisturbed, reaches every member host (the
    // sending host is never a member: hosts 5 vs 1).
    let expected = sent * members.len() as u64;
    let delivery_ratio = if expected == 0 {
        1.0
    } else {
        delivered as f64 / expected as f64
    };

    // ---- Final probe ------------------------------------------------
    let probe_host = HostId {
        domain: asn_of(ids[n / 2]),
        host: 9,
    };
    let probe = net.send_data(probe_host, g);
    net.run_for(SimDuration::from_secs(30));
    let got = net.deliveries(probe);
    let probe_clean = got == members;

    let fault_stats = net.engine.faults().stats();
    let fingerprint = state_fingerprint(&net);
    let events = net.engine.stats().events;
    ChaosOutcome {
        sent,
        delivered,
        expected,
        delivery_ratio,
        convergence_ms,
        quiescent_violations,
        probe_clean,
        fault_stats,
        fingerprint,
        events,
    }
}
