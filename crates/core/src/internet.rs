//! Building a runnable simulated internet from a domain graph.
//!
//! The builder instantiates one [`DomainActor`] per domain, creates
//! border routers (one per inter-domain edge, like the paper's figure-1
//! domain A with routers A1–A4, or a single router per domain for
//! larger graphs), wires eBGP/iBGP peerings and BGMP peerings along
//! them, assigns multicast ranges (statically, or via live MASC), and
//! exposes group-session orchestration plus delivery accounting.
//!
//! Full-protocol internets are meant for small and medium topologies
//! (tests, the paper's figure-1/figure-3 scenarios, examples, and the
//! analytic-vs-protocol cross-validation). The 3326-domain figure-4
//! sweep uses `trees` — same next-hop logic, no per-message cost.

use std::collections::BTreeMap;

use bgmp::BgmpRouter;
use bgp::session::SessionTimers;
use bgp::{Asn, BgpSpeaker, ExportPolicy, PeerConfig, PeerRel, RouterId};
use masc::{MascConfig, MascNode};
use mcast_addr::{McastAddr, Prefix, Secs};
use migp::{DomainNet, MigpKind};
use simnet::{NodeId, SimDuration, SimEngine, SimTime};
use topology::{DomainGraph, DomainId, MascHierarchy, Rel};

use crate::domain::{BorderRouter, DomainActor, HostId, Wire};

/// How group address ranges are assigned to domains.
#[derive(Debug, Clone)]
pub enum Addressing {
    /// Every domain gets an equal static carve of 224/4 (suits
    /// BGMP-focused experiments; the root-domain binding is what
    /// matters, not how it was claimed).
    Static,
    /// Hierarchical static assignment: top-level domains split 224/4,
    /// children take nested sub-prefixes of their MASC parent's range
    /// — the allocation pattern a converged MASC produces (§4.3.2),
    /// used by the aggregation ablation.
    StaticNested,
    /// Run the MASC protocol live over the same simulation.
    Masc(MascConfig),
    /// No multicast ranges (BGP-only experiments).
    None,
}

/// How many border routers a domain gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BorderPlan {
    /// One border router per inter-domain edge (paper figure-1 style).
    PerEdge,
    /// A single border router handling all of the domain's peerings
    /// (scales to larger graphs).
    Single,
}

/// Configuration for [`Internet::build`].
#[derive(Debug, Clone)]
pub struct InternetConfig {
    /// BGP export policy.
    pub policy: ExportPolicy,
    /// Intra-domain protocol for every domain (heterogeneous setups
    /// can swap instances after building).
    pub migp: MigpKind,
    /// Border-router plan.
    pub borders: BorderPlan,
    /// Address assignment.
    pub addressing: Addressing,
    /// One-way inter-domain link latency (ms).
    pub link_latency_ms: u64,
    /// Suppress exporting covered customer group routes (§4.2); the
    /// aggregation ablation turns this off.
    pub aggregate_suppress: bool,
    /// Session liveness (keepalive/hold/retry) on every external
    /// peering. `None` (the default) disables the machinery entirely:
    /// failures must then be signalled with explicit
    /// [`Internet::fail_link`]/[`Internet::heal_link`] calls. Enable
    /// it to let the protocol *detect* silent failures — lossy links,
    /// un-signalled cuts ([`Internet::cut_link`]) and node crashes
    /// ([`Internet::schedule_crash`]) — by hold-timer expiry.
    pub sessions: Option<SessionTimers>,
    /// RNG seed.
    pub seed: u64,
    /// Number of engine shards. `0` (the default) runs the legacy
    /// serial engine — byte-identical to every historical golden.
    /// `shards ≥ 1` runs the domain-decomposed engine, whose outputs
    /// are byte-identical across shard counts (but form a separate
    /// determinism family from serial: per-node RNG streams). Domains
    /// are assigned to shards in contiguous index bands.
    pub shards: usize,
}

impl Default for InternetConfig {
    fn default() -> Self {
        InternetConfig {
            policy: ExportPolicy::Open,
            migp: MigpKind::Dvmrp,
            borders: BorderPlan::PerEdge,
            addressing: Addressing::Static,
            link_latency_ms: 10,
            aggregate_suppress: true,
            sessions: None,
            seed: 1,
            shards: 0,
        }
    }
}

/// A running simulated internet.
pub struct Internet {
    /// The event engine (serial or sharded per
    /// [`InternetConfig::shards`]).
    pub engine: SimEngine<Wire>,
    /// The domain graph it was built from.
    pub graph: DomainGraph,
    /// Simulator node of each domain (indexed by `DomainId.0`).
    pub nodes: Vec<NodeId>,
    /// Static range of each domain (when static addressing is used).
    pub static_ranges: Vec<Option<Prefix>>,
    next_packet: u64,
}

/// The ASN of a domain: `DomainId.0 + 1` (ASN 0 is reserved).
pub fn asn_of(d: DomainId) -> Asn {
    d.0 as Asn + 1
}

/// The domain of an ASN.
pub fn domain_of(asn: Asn) -> DomainId {
    DomainId(asn as usize - 1)
}

/// Hierarchical (nested) static ranges: top-level domains split 224/4
/// evenly; each child takes an equal sub-slice of its MASC parent's
/// range. This mirrors the aggregatable allocations MASC converges to
/// (§4.3.2).
fn nested_ranges(graph: &DomainGraph) -> Vec<Option<Prefix>> {
    let h = MascHierarchy::derive(graph);
    let mut ranges: Vec<Option<Prefix>> = vec![None; graph.len()];
    // Top level: split 224/4 among the top-level domains.
    let tops = &h.top_level;
    let bits = (usize::BITS - (tops.len().max(1) - 1).leading_zeros()).max(1) as u8;
    let mut it = Prefix::MULTICAST.subprefixes(4 + bits);
    for t in tops {
        ranges[t.0] = it.next();
    }
    // Descend: each domain reserves the first half of its range for
    // itself and splits the second half among its children, keeping
    // every child range nested (and therefore aggregatable) inside the
    // parent's.
    for d in h.top_down() {
        let Some(range) = ranges[d.0] else { continue };
        let kids = h.children_of(d);
        if kids.is_empty() {
            continue;
        }
        let Some((_, child_half)) = range.split() else {
            continue;
        };
        let kbits = (usize::BITS - (kids.len().max(1) - 1).leading_zeros()).max(1) as u8;
        let klen = child_half.len() + kbits;
        if klen > 30 {
            continue; // too deep; children fall back to no range
        }
        let mut kit = child_half.subprefixes(klen);
        for k in kids {
            ranges[k.0] = kit.next();
        }
    }
    ranges
}

impl Internet {
    /// Builds the internet; call [`Internet::converge`] afterwards to
    /// let BGP settle.
    pub fn build(graph: DomainGraph, cfg: &InternetConfig) -> Internet {
        let n = graph.len();
        let mut engine: SimEngine<Wire> = SimEngine::with_shards(
            cfg.seed,
            SimDuration::from_millis(cfg.link_latency_ms),
            cfg.shards,
        );
        // Contiguous index bands — deterministic, and hierarchy
        // builders lay out siblings adjacently so intra-band chatter
        // mostly stays on-shard.
        let shard_of = |d: DomainId| {
            if cfg.shards == 0 {
                0
            } else {
                d.0 * cfg.shards / n.max(1)
            }
        };

        // ---- Router id plan ----------------------------------------
        // Per domain: list of (router id, peer domain(s)).
        let mut next_router: RouterId = 1;
        // (domain, neighbor) -> router id handling that edge.
        let mut edge_router: BTreeMap<(usize, usize), RouterId> = BTreeMap::new();
        let mut routers_of: Vec<Vec<RouterId>> = vec![Vec::new(); n];
        for d in graph.domains() {
            match cfg.borders {
                BorderPlan::PerEdge => {
                    for &(nb, _) in graph.neighbors(d) {
                        let id = next_router;
                        next_router += 1;
                        edge_router.insert((d.0, nb.0), id);
                        routers_of[d.0].push(id);
                    }
                    if graph.neighbors(d).is_empty() {
                        let id = next_router;
                        next_router += 1;
                        routers_of[d.0].push(id);
                    }
                }
                BorderPlan::Single => {
                    let id = next_router;
                    next_router += 1;
                    for &(nb, _) in graph.neighbors(d) {
                        edge_router.insert((d.0, nb.0), id);
                    }
                    routers_of[d.0].push(id);
                }
            }
        }

        // ---- Static ranges ------------------------------------------
        let static_ranges: Vec<Option<Prefix>> = match cfg.addressing {
            Addressing::Static => {
                let bits = (usize::BITS - (n.max(1) - 1).leading_zeros()).max(1) as u8;
                let len = 4 + bits;
                assert!(len <= 24, "too many domains for static /{len} carving");
                let mut it = Prefix::MULTICAST.subprefixes(len);
                (0..n).map(|_| it.next()).collect()
            }
            Addressing::StaticNested => nested_ranges(&graph),
            _ => vec![None; n],
        };

        // ---- MASC hierarchy -----------------------------------------
        let masc_cfg = match &cfg.addressing {
            Addressing::Masc(mc) => Some(mc.clone()),
            _ => None,
        };
        let hierarchy = masc_cfg.as_ref().map(|_| MascHierarchy::derive(&graph));

        // ---- Actors --------------------------------------------------
        let mut nodes = Vec::with_capacity(n);
        for d in graph.domains() {
            let borders = routers_of[d.0].len();
            let net = if borders <= 1 {
                DomainNet::star(2, 1)
            } else {
                DomainNet::random(borders + 2, borders, 2, cfg.seed ^ d.0 as u64)
            };
            let mut actor = DomainActor::new(asn_of(d), cfg.migp.build(net.clone()));
            actor.static_range = static_ranges[d.0];
            actor.session_timers = cfg.sessions;

            // Border routers with their peer configs.
            for (i, &rid) in routers_of[d.0].iter().enumerate() {
                let mut peers: Vec<PeerConfig> = routers_of[d.0]
                    .iter()
                    .filter(|r| **r != rid)
                    .map(|r| PeerConfig {
                        router: *r,
                        asn: asn_of(d),
                        rel: PeerRel::Internal,
                    })
                    .collect();
                // External peers handled by this router.
                for &(nb, rel) in graph.neighbors(d) {
                    let handles_edge = edge_router[&(d.0, nb.0)] == rid;
                    if handles_edge {
                        let peer_router = edge_router[&(nb.0, d.0)];
                        let peer_rel = match rel {
                            Rel::Provider => PeerRel::Provider,
                            Rel::Customer => PeerRel::Customer,
                            Rel::Peer => PeerRel::Peer,
                        };
                        peers.push(PeerConfig {
                            router: peer_router,
                            asn: asn_of(nb),
                            rel: peer_rel,
                        });
                    }
                }
                let mut speaker = BgpSpeaker::new(rid, asn_of(d), peers, cfg.policy);
                speaker.aggregate_suppress = cfg.aggregate_suppress;
                actor.add_router(BorderRouter {
                    id: rid,
                    local: net.border_routers()[i.min(net.border_routers().len() - 1)],
                    speaker,
                    bgmp: BgmpRouter::new(rid),
                });
            }

            // MASC node.
            if let (Some(mc), Some(h)) = (&masc_cfg, &hierarchy) {
                let parent = h.parent_of(d).map(asn_of);
                let children: Vec<Asn> = h.children_of(d).iter().map(|c| asn_of(*c)).collect();
                let siblings: Vec<Asn> = h.siblings_of(d).iter().map(|s| asn_of(*s)).collect();
                let mut node =
                    MascNode::new(asn_of(d), parent, children, siblings, mc.clone(), cfg.seed);
                if parent.is_none() {
                    node.bootstrap_ranges(&[(Prefix::MULTICAST, Secs::MAX)]);
                }
                actor.masc = Some(node);
            }

            let node = engine.add_node_in(shard_of(d), Box::new(actor));
            nodes.push(node);
        }

        // ---- Wire address maps ---------------------------------------
        // router id -> owning node.
        let mut router_node: BTreeMap<RouterId, NodeId> = BTreeMap::new();
        for d in graph.domains() {
            for &rid in &routers_of[d.0] {
                router_node.insert(rid, nodes[d.0]);
            }
        }
        let domain_node: BTreeMap<Asn, NodeId> =
            graph.domains().map(|d| (asn_of(d), nodes[d.0])).collect();
        for d in graph.domains() {
            let mut peer_node = BTreeMap::new();
            for &(nb, _) in graph.neighbors(d) {
                let peer_router = edge_router[&(nb.0, d.0)];
                peer_node.insert(peer_router, nodes[nb.0]);
            }
            let node = nodes[d.0];
            let actor = engine.node_as_mut::<DomainActor>(node).expect("actor type");
            actor.wire(peer_node, domain_node.clone());
        }

        Internet {
            engine,
            graph,
            nodes,
            static_ranges,
            next_packet: 0,
        }
    }

    /// Runs the simulation until protocol chatter has settled: all
    /// events within the next 30 simulated minutes are processed
    /// (control-plane convergence takes milliseconds of simulated
    /// time; the horizon keeps long-lived MASC renewal timers — which
    /// never go idle — from stalling the call).
    pub fn converge(&mut self) {
        let until = self.engine.now() + SimDuration::from_mins(30);
        self.engine.run_until(until);
    }

    /// Advances simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.engine.now() + d;
        self.engine.run_until(until);
    }

    /// Immutable access to a domain's actor.
    pub fn domain(&self, d: DomainId) -> &DomainActor {
        self.engine
            .node_as::<DomainActor>(self.nodes[d.0])
            .expect("actor type")
    }

    /// Mutable access to a domain's actor (setup only; in-flight
    /// messages are unaffected).
    pub fn domain_mut(&mut self, d: DomainId) -> &mut DomainActor {
        self.engine
            .node_as_mut::<DomainActor>(self.nodes[d.0])
            .expect("actor type")
    }

    fn soon(&self) -> SimTime {
        self.engine.now() + SimDuration::from_millis(1)
    }

    /// Finds the border routers handling the edge between two adjacent
    /// domains.
    fn edge_routers(&self, a: DomainId, b: DomainId) -> Option<(RouterId, RouterId)> {
        let ra = self
            .domain(a)
            .routers
            .iter()
            .find(|br| br.speaker.peers().any(|p| p.asn == asn_of(b)))?
            .id;
        let rb = self
            .domain(b)
            .routers
            .iter()
            .find(|br| br.speaker.peers().any(|p| p.asn == asn_of(a)))?
            .id;
        Some((ra, rb))
    }

    /// Fails the inter-domain link between two adjacent domains: the
    /// simulated link drops traffic, both BGP sessions flush (routes
    /// fail over where alternates exist), and BGMP reroutes affected
    /// tree state along the post-failover routes.
    pub fn fail_link(&mut self, a: DomainId, b: DomainId) {
        let (ra, rb) = self.edge_routers(a, b).expect("adjacent domains");
        let na = self.nodes[a.0];
        let nb = self.nodes[b.0];
        self.engine.links_mut().set_down(na, nb);
        let at = self.soon();
        self.engine.schedule_message(
            at,
            na,
            Wire::PeerLinkDown {
                router: ra,
                peer: rb,
            },
        );
        self.engine.schedule_message(
            at,
            nb,
            Wire::PeerLinkDown {
                router: rb,
                peer: ra,
            },
        );
    }

    /// Heals a previously failed link: sessions re-establish and full
    /// tables resync.
    pub fn heal_link(&mut self, a: DomainId, b: DomainId) {
        let (ra, rb) = self.edge_routers(a, b).expect("adjacent domains");
        let na = self.nodes[a.0];
        let nb = self.nodes[b.0];
        self.engine.links_mut().set_up(na, nb);
        let at = self.soon();
        self.engine.schedule_message(
            at,
            na,
            Wire::PeerLinkUp {
                router: ra,
                peer: rb,
            },
        );
        self.engine.schedule_message(
            at,
            nb,
            Wire::PeerLinkUp {
                router: rb,
                peer: ra,
            },
        );
    }

    /// Cuts the link between two adjacent domains *silently*: no
    /// control event is delivered. With session liveness enabled
    /// ([`InternetConfig::sessions`]) the endpoints discover the
    /// outage themselves, the way a real deployment would.
    pub fn cut_link(&mut self, a: DomainId, b: DomainId) {
        let (na, nb) = (self.nodes[a.0], self.nodes[b.0]);
        self.engine.links_mut().set_down(na, nb);
    }

    /// Restores a link cut with [`Internet::cut_link`] — again with no
    /// control event; the retry machinery re-establishes the sessions.
    pub fn restore_link(&mut self, a: DomainId, b: DomainId) {
        let (na, nb) = (self.nodes[a.0], self.nodes[b.0]);
        self.engine.links_mut().set_up(na, nb);
    }

    /// Schedules a fail-stop crash of domain `d`'s node `after` from
    /// now, restarting it `down_for` later. While down, messages to
    /// the node are blackholed and its timers are suppressed; on
    /// restart the actor rebuilds its volatile state (see
    /// `DomainActor::on_restart`). Session liveness must be enabled
    /// for neighbours to detect the crash (hold expiry, or a boot
    /// generation bump for outages shorter than the hold time).
    pub fn schedule_crash(&mut self, d: DomainId, after: SimDuration, down_for: SimDuration) {
        let at = self.engine.now() + after;
        self.engine
            .schedule_crash(self.nodes[d.0], at, at + down_for)
            .expect("crash window is forwards: until = at + down_for");
    }

    /// Schedules a host join (processed on the next run).
    pub fn host_join(&mut self, host: HostId, group: McastAddr) {
        let node = self.nodes[domain_of(host.domain).0];
        self.engine
            .schedule_message(self.soon(), node, Wire::HostJoin { host, group });
    }

    /// Schedules a host leave.
    pub fn host_leave(&mut self, host: HostId, group: McastAddr) {
        let node = self.nodes[domain_of(host.domain).0];
        self.engine
            .schedule_message(self.soon(), node, Wire::HostLeave { host, group });
    }

    /// Schedules a data transmission; returns the packet id.
    pub fn send_data(&mut self, host: HostId, group: McastAddr) -> u64 {
        let id = self.next_packet;
        self.next_packet += 1;
        let node = self.nodes[domain_of(host.domain).0];
        self.engine
            .schedule_message(self.soon(), node, Wire::SendData { host, group, id });
        id
    }

    /// A fresh group address rooted in `d` (static addressing).
    pub fn group_addr(&mut self, d: DomainId) -> McastAddr {
        let now = self.engine.now().as_secs();
        self.domain_mut(d)
            .alloc_group_addr(now)
            .expect("group address available")
    }

    /// Tries to allocate a group address in `d`. With MASC addressing
    /// this may need a claim round first: the attempt queues the
    /// demand, and a wakeup is scheduled so the claim goes out; call
    /// again after running the simulation forward.
    pub fn try_group_addr(&mut self, d: DomainId) -> Option<McastAddr> {
        let now = self.engine.now().as_secs();
        let out = self.domain_mut(d).alloc_group_addr(now);
        // Poke the node so buffered MASC actions flush.
        let node = self.nodes[d.0];
        self.engine.schedule_timer(self.soon(), node, u64::MAX);
        out
    }

    /// All hosts that received packet `id`, across domains.
    pub fn deliveries(&self, id: u64) -> Vec<HostId> {
        let mut out = Vec::new();
        for d in self.graph.domains() {
            for (pid, h) in &self.domain(d).log.received {
                if *pid == id {
                    out.push(*h);
                }
            }
        }
        out.sort();
        out
    }

    /// Sum of duplicate deliveries across domains (must be 0).
    pub fn total_duplicates(&self) -> u64 {
        self.graph
            .domains()
            .map(|d| self.domain(d).log.duplicates)
            .sum()
    }

    /// Sum of encapsulation hand-offs across domains.
    pub fn total_encapsulations(&self) -> u64 {
        self.graph
            .domains()
            .map(|d| self.domain(d).log.encapsulations)
            .sum()
    }

    /// Serializes the full protocol state — every domain actor, the
    /// event queue, clock, RNG, links, and fault plane. Restore with
    /// [`Internet::resume_from`] on an internet freshly built from the
    /// *same* graph and config; the continuation is then byte-identical
    /// to a run that was never interrupted.
    pub fn checkpoint(&self) -> Result<Vec<u8>, snapshot::SnapError> {
        let mut enc = snapshot::Enc::with_header(SNAP_KIND_INTERNET);
        enc.usize(self.nodes.len());
        enc.u64(self.next_packet);
        enc.bytes(&self.engine.checkpoint::<DomainActor>()?);
        Ok(enc.finish())
    }

    /// Restores [`Internet::checkpoint`] bytes onto this instance,
    /// which must have been built from the same graph and config (the
    /// snapshot carries dynamic state, not topology). Construction-time
    /// work (`on_start`, convergence) is superseded by the restored
    /// state.
    pub fn resume_from(&mut self, bytes: &[u8]) -> Result<(), snapshot::SnapError> {
        let mut dec = snapshot::Dec::new(bytes);
        dec.header(SNAP_KIND_INTERNET)?;
        let n = dec.usize()?;
        if n != self.nodes.len() {
            return Err(snapshot::SnapError::Invalid(
                "domain count differs from snapshot",
            ));
        }
        let next_packet = dec.u64()?;
        let engine_blob = dec.bytes()?.to_vec();
        dec.finish()?;
        self.engine.resume::<DomainActor>(&engine_blob)?;
        self.next_packet = next_packet;
        Ok(())
    }
}

/// Snapshot kind tag for [`Internet::checkpoint`] blobs.
pub const SNAP_KIND_INTERNET: u16 = 3;
