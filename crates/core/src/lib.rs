//! The integrated MASC/BGMP architecture.
//!
//! This crate assembles the substrates into the system the paper
//! describes: domains with border routers running BGP (with group
//! routes) and BGMP, any MIGP inside each domain, and MASC allocating
//! the address ranges that bind groups to root domains.
//!
//! * [`domain`] — one administrative domain as a simulation actor
//!   (border routers + MIGP + MASC + data plane + delivery log);
//! * [`internet`] — building a runnable internet from a
//!   [`topology::DomainGraph`] and orchestrating group sessions;
//! * [`trees`] — analytic tree construction for the figure-4 study;
//! * [`analysis`] — extraction and verification of protocol state
//!   (tree invariants, G-RIB sizes, exact-once delivery).

pub mod analysis;
pub mod chaos;
pub mod domain;
pub mod internet;
pub mod invariants;
pub mod trees;

pub use domain::{BorderRouter, DataPacket, DeliveryLog, DomainActor, HostId, Wire};
pub use internet::{
    asn_of, domain_of, Addressing, BorderPlan, Internet, InternetConfig, SNAP_KIND_INTERNET,
};
pub use invariants::Violation;
pub use trees::{compare_trees, compare_trees_full, BidirTree, PathLengths, TreeComparison};
