//! End-to-end integration: the paper's figure-1/figure-3 topology with
//! live BGP, BGMP, and MIGP components.

use masc_bgmp_core::analysis::{
    delivered_exactly, on_tree_domains, shared_tree_edges, verify_tree,
};
use masc_bgmp_core::{Addressing, BorderPlan, HostId, Internet, InternetConfig};
use migp::MigpKind;
use simnet::SimDuration;
use topology::{DomainGraph, DomainId};

/// The paper's figure-1/figure-3 inter-domain topology:
/// backbones A, D, E (peered: A–D, A–E, D–E); regionals B and C under
/// A; F under B *and* (via a second link) under A; G under C; H under G.
///
/// Returns (graph, ids) with ids in order [A, B, C, D, E, F, G, H].
fn fig3_graph() -> (DomainGraph, Vec<DomainId>) {
    let mut g = DomainGraph::new();
    let ids: Vec<DomainId> = ["A", "B", "C", "D", "E", "F", "G", "H"]
        .iter()
        .map(|n| g.add_domain(*n))
        .collect();
    let (a, b, c, d, e, f, gg, h) = (
        ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7],
    );
    g.add_peering(a, d);
    g.add_peering(a, e);
    g.add_peering(d, e);
    g.add_provider_customer(a, b);
    g.add_provider_customer(a, c);
    g.add_provider_customer(b, f);
    g.add_provider_customer(a, f); // F's second link (fig. 3: F2–A4)
    g.add_provider_customer(c, gg);
    g.add_provider_customer(gg, h);
    (g, ids)
}

fn build(migp: MigpKind) -> (Internet, Vec<DomainId>) {
    let (graph, ids) = fig3_graph();
    let cfg = InternetConfig {
        migp,
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    net.converge();
    (net, ids)
}

fn host(_net: &Internet, d: DomainId, n: u32) -> HostId {
    HostId {
        domain: masc_bgmp_core::asn_of(d),
        host: n,
    }
}

#[test]
fn bgp_converges_and_binds_groups_to_root_domains() {
    let (mut net, ids) = build(MigpKind::Dvmrp);
    let b = ids[1];
    let g = net.group_addr(b);
    // Every domain's G-RIB must resolve g toward B's range.
    let b_range = net.static_ranges[b.0].unwrap();
    assert!(b_range.contains(g));
    for d in net.graph.domains() {
        let actor = net.domain(d);
        let found = actor.routers.iter().any(|br| {
            br.speaker
                .rib()
                .lookup_group(g)
                .is_some_and(|r| r.origin_asn() == Some(masc_bgmp_core::asn_of(b)))
        });
        assert!(
            found,
            "domain {} cannot resolve the root domain",
            net.graph.name(d)
        );
    }
}

#[test]
fn shared_tree_forms_and_delivers_bidirectionally() {
    let (mut net, ids) = build(MigpKind::Dvmrp);
    let (a, b, c, d) = (ids[0], ids[1], ids[2], ids[3]);
    // Group rooted in B (the paper's 224.0.128.1 example).
    let g = net.group_addr(b);

    // Members in B, C, and D.
    let hb = host(&net, b, 1);
    let hc = host(&net, c, 1);
    let hd = host(&net, d, 1);
    for h in [hb, hc, hd] {
        net.host_join(h, g);
    }
    net.converge();

    // The tree must be rooted at B and contain the member domains.
    let violations = verify_tree(&net, g, b, &[b, c, d]);
    assert!(violations.is_empty(), "tree violations: {violations:?}");
    let on_tree = on_tree_domains(&net, g);
    assert!(on_tree.contains(&a), "A must transit the tree: {on_tree:?}");

    // C and D exchange data along the bidirectional tree.
    let id1 = net.send_data(hc, g);
    net.converge();
    assert!(
        delivered_exactly(&net, id1, &[hb, hd]),
        "C's data must reach B and D exactly once: got {:?}",
        net.deliveries(id1)
    );
    let id2 = net.send_data(hd, g);
    net.converge();
    assert!(
        delivered_exactly(&net, id2, &[hb, hc]),
        "D's data must reach B and C: got {:?}",
        net.deliveries(id2)
    );
}

#[test]
fn non_member_sender_reaches_the_tree() {
    let (mut net, ids) = build(MigpKind::Dvmrp);
    let (b, c, e) = (ids[1], ids[2], ids[4]);
    let g = net.group_addr(b);
    let hb = host(&net, b, 1);
    let hc = host(&net, c, 1);
    net.host_join(hb, g);
    net.host_join(hc, g);
    net.converge();

    // A host in E (no members, not on tree) sends: data flows toward
    // the root domain until it meets the tree (§5).
    let he = host(&net, e, 9);
    let id = net.send_data(he, g);
    net.converge();
    assert!(
        delivered_exactly(&net, id, &[hb, hc]),
        "E's data must reach members: got {:?}",
        net.deliveries(id)
    );
}

#[test]
fn teardown_prunes_the_tree() {
    let (mut net, ids) = build(MigpKind::Dvmrp);
    let (b, c) = (ids[1], ids[2]);
    let g = net.group_addr(b);
    let hc = host(&net, c, 1);
    net.host_join(hc, g);
    net.converge();
    assert!(!shared_tree_edges(&net, g).is_empty());

    net.host_leave(hc, g);
    net.converge();
    assert!(
        shared_tree_edges(&net, g).is_empty(),
        "prunes must tear the tree down: {:?}",
        shared_tree_edges(&net, g)
    );
    // Data sent now is dropped at the root (no members), not leaked.
    let hb = host(&net, b, 2);
    let id = net.send_data(hb, g);
    net.converge();
    assert!(net.deliveries(id).is_empty());
}

#[test]
fn all_migps_deliver_identically() {
    // MIGP independence (§3): the inter-domain result must not depend
    // on which protocol runs inside domains.
    let mut results = Vec::new();
    for kind in [
        MigpKind::Dvmrp,
        MigpKind::PimSm,
        MigpKind::Cbt,
        MigpKind::Mospf,
        MigpKind::PimDm,
    ] {
        let (mut net, ids) = build(kind);
        let (b, c, gg) = (ids[1], ids[2], ids[6]);
        let g = net.group_addr(b);
        let hb = host(&net, b, 1);
        let hc = host(&net, c, 1);
        let hg = host(&net, gg, 1);
        for h in [hb, hc, hg] {
            net.host_join(h, g);
        }
        net.converge();
        let sender = host(&net, ids[3], 7);
        let id = net.send_data(sender, g);
        net.converge();
        let mut got = net.deliveries(id);
        got.sort();
        assert_eq!(net.total_duplicates(), 0, "{kind:?} duplicated");
        results.push((format!("{kind:?}"), got));
    }
    let first = results[0].1.clone();
    for (name, got) in &results {
        assert_eq!(*got, first, "{name} delivered a different set");
    }
}

#[test]
fn member_churn_under_traffic_stays_consistent() {
    let (mut net, ids) = build(MigpKind::Dvmrp);
    let (b, c, d, gg) = (ids[1], ids[2], ids[3], ids[6]);
    let g = net.group_addr(b);
    let hb = host(&net, b, 1);
    let hc = host(&net, c, 1);
    let hd = host(&net, d, 1);
    let hg = host(&net, gg, 1);
    net.host_join(hb, g);
    net.host_join(hc, g);
    net.converge();

    // Interleave joins/leaves with data.
    let id1 = net.send_data(hd, g); // d is a non-member sender
    net.run_for(SimDuration::from_millis(500));
    net.host_join(hg, g);
    net.host_leave(hc, g);
    net.converge();
    let id2 = net.send_data(hd, g);
    net.converge();

    // First packet went to the members of the time.
    assert!(net.deliveries(id1).contains(&hb));
    // Second packet reflects the new membership exactly.
    assert!(
        delivered_exactly(&net, id2, &[hb, hg]),
        "got {:?}",
        net.deliveries(id2)
    );
    assert_eq!(net.total_duplicates(), 0);
}
