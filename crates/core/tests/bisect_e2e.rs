//! End-to-end checkpoint bisection: a long run with periodic
//! checkpoints develops an invariant violation at a known (to the
//! test, not the search) tick; `snapshot::bisect` must localise the
//! break to exactly one checkpoint interval in O(log n) replays and
//! hand back the trace window covering the guilty interval.

use bgmp::Target;
use masc_bgmp_core::chaos::chaos_session_timers;
use masc_bgmp_core::invariants::check_quiescent;
use masc_bgmp_core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig};
use mcast_addr::McastAddr;
use simnet::{SimDuration, SimTime};
use snapshot::bisect;
use topology::{DomainGraph, DomainId};

const CP_EVERY_MS: u64 = 10_000;
const INJECT_MS: u64 = 33_000;
const END_MS: u64 = 60_000;

fn build() -> (Internet, Vec<DomainId>) {
    let mut g = DomainGraph::new();
    let ids: Vec<DomainId> = (0..5).map(|i| g.add_domain(format!("B{i}"))).collect();
    for i in 0..5 {
        g.add_peering(ids[i], ids[(i + 1) % 5]);
    }
    let cfg = InternetConfig {
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        sessions: Some(chaos_session_timers()),
        seed: 77,
        ..Default::default()
    };
    let mut net = Internet::build(g, &cfg);
    net.engine.enable_trace(4096);
    (net, ids)
}

/// The seeded defect: a stray child pointing at a router id no domain
/// owns, wedged into the first (*,G) entry found. Structural, silent,
/// and permanent — exactly what bisection exists to localise.
fn corrupt(net: &mut Internet, ids: &[DomainId], g: McastAddr) {
    for &d in ids {
        let actor = net.domain_mut(d);
        for br in &mut actor.routers {
            if let Some(e) = br.bgmp.table_mut().star_exact_mut(g) {
                e.children.insert(Target::Peer(999_999));
                return;
            }
        }
    }
    panic!("no (*,G) entry to corrupt");
}

/// Replays external stimulus over [from_ms, to_ms) relative to `t0`
/// and runs to `to_ms`. The corruption is part of the script, so a
/// bisection replay across the guilty interval reproduces it.
fn drive(
    net: &mut Internet,
    ids: &[DomainId],
    g: McastAddr,
    t0: SimTime,
    from_ms: u64,
    to_ms: u64,
) {
    if (from_ms..to_ms).contains(&INJECT_MS) {
        net.engine
            .run_until(t0 + SimDuration::from_millis(INJECT_MS));
        corrupt(net, ids, g);
    }
    net.engine.run_until(t0 + SimDuration::from_millis(to_ms));
}

fn violations_of(net: &Internet) -> Vec<String> {
    check_quiescent(net)
        .into_iter()
        .map(|v| format!("{v:?}"))
        .collect()
}

#[test]
fn bisect_localises_seeded_violation_to_one_interval() {
    // ---- The long run, checkpointed every CP_EVERY_MS ----------
    let (mut net, ids) = build();
    net.converge();
    let g = net.group_addr(ids[0]);
    for d in &ids {
        net.host_join(
            HostId {
                domain: asn_of(*d),
                host: 1,
            },
            g,
        );
    }
    net.converge();
    assert!(check_quiescent(&net).is_empty(), "dirty before the run");
    let t0 = net.engine.now();

    let mut checkpoints: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut prev = 0u64;
    for k in 0..=(END_MS / CP_EVERY_MS) {
        let at = k * CP_EVERY_MS;
        drive(&mut net, &ids, g, t0, prev, at);
        checkpoints.push((at, net.checkpoint().expect("checkpoint")));
        prev = at;
    }

    // The failure is only *observed* at the end of the run.
    let fail_tick = END_MS;
    assert!(
        !check_quiescent(&net).is_empty(),
        "seeded violation never surfaced"
    );

    // ---- The search --------------------------------------------
    let report = bisect(
        &checkpoints,
        fail_tick,
        |blob| -> Result<Vec<String>, snapshot::SnapError> {
            let (mut probe, _) = build();
            probe.resume_from(blob)?;
            Ok(violations_of(&probe))
        },
        |blob, to_tick| -> Result<_, snapshot::SnapError> {
            let (mut probe, pids) = build();
            probe.resume_from(blob)?;
            let from_ms = probe.engine.now().as_millis() - t0.as_millis();
            drive(&mut probe, &pids, g, t0, from_ms, to_tick);
            let resume_at = t0 + SimDuration::from_millis(from_ms);
            let window: Vec<(u64, String)> = probe
                .engine
                .trace()
                .expect("trace enabled across resume")
                .lines()
                .filter(|(at, _)| *at >= resume_at)
                .map(|(at, l)| (at.as_millis() - t0.as_millis(), l.to_string()))
                .collect();
            Ok((violations_of(&probe), window))
        },
    )
    .expect("callbacks never fail")
    .expect("checkpoints exist");

    // Localised to exactly the interval containing INJECT_MS.
    assert_eq!(report.from_tick, 30_000, "last clean checkpoint");
    assert_eq!(report.to_tick, 40_000, "first violating checkpoint");
    assert!(
        report.from_tick <= INJECT_MS && INJECT_MS < report.to_tick,
        "guilty interval misses the injection"
    );

    // O(log n) probes: 7 checkpoints need at most 3.
    assert!(
        report.probes.len() <= 3,
        "took {} probes for 7 checkpoints",
        report.probes.len()
    );

    // The replay reproduced the violation and captured the window.
    assert!(
        report.violations.iter().any(|v| v.contains("999999")),
        "replay did not reproduce the seeded violation: {:?}",
        report.violations
    );
    assert!(!report.trace_window.is_empty(), "no trace window");
    assert!(
        report
            .trace_window
            .iter()
            .all(|(at, _)| (30_000..=40_000).contains(at)),
        "trace window strays outside the guilty interval"
    );
    assert!(
        report
            .trace_window
            .iter()
            .any(|(_, l)| l.contains("resume")),
        "resume marker missing from the trace window"
    );
}
