//! Property test for the fault layer: on random topologies under
//! random silent-flap/crash schedules, the network must come back
//! clean once the faults cease — invariants hold, and the rebuilt
//! shared trees must equal the trees a never-faulted network builds
//! from the same (final) topology.

use bgmp::Target;
use masc_bgmp_core::chaos::chaos_session_timers;
use masc_bgmp_core::invariants::{check_quiescent, check_running};
use masc_bgmp_core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig, Wire};
use proptest::prelude::*;
use simnet::{FaultModel, SimDuration};
use topology::{DomainGraph, DomainId};

/// One random scenario: a ring with optional chords, a flap/crash
/// schedule, and an optional ambient loss model.
#[derive(Debug, Clone)]
struct Case {
    domains: usize,
    /// Chord endpoints (reduced mod `domains`, deduped at build time).
    extras: Vec<(usize, usize)>,
    /// (edge index, start s, duration s) silent flaps.
    flaps: Vec<(usize, u64, u64)>,
    /// (victim index ≥ 1, start s, outage s) fail-stop crash.
    crash: Option<(usize, u64, u64)>,
    lossy: bool,
    seed: u64,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        4usize..=6,
        prop::collection::vec((0usize..6, 0usize..6), 0..=2),
        prop::collection::vec((0usize..8, 5u64..40, 6u64..=24), 1..=4),
        prop::option::of((1usize..6, 5u64..35, 8u64..=28)),
        any::<bool>(),
        0u64..1_000,
    )
        .prop_map(|(domains, extras, flaps, crash, lossy, seed)| Case {
            domains,
            extras,
            flaps,
            crash,
            lossy,
            seed,
        })
}

fn build_graph(case: &Case) -> (DomainGraph, Vec<DomainId>, Vec<(usize, usize)>) {
    let n = case.domains;
    let mut graph = DomainGraph::new();
    let ids: Vec<DomainId> = (0..n).map(|i| graph.add_domain(format!("P{i}"))).collect();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        graph.add_peering(ids[i], ids[(i + 1) % n]);
        edges.push((i, (i + 1) % n));
    }
    for &(a, b) in &case.extras {
        let (a, b) = (a % n, b % n);
        let (lo, hi) = (a.min(b), a.max(b));
        let adjacent = hi - lo == 1 || (lo == 0 && hi == n - 1);
        if lo == hi || adjacent || edges.contains(&(lo, hi)) {
            continue;
        }
        graph.add_peering(ids[lo], ids[hi]);
        edges.push((lo, hi));
    }
    (graph, ids, edges)
}

fn build_net(graph: DomainGraph, seed: u64) -> Internet {
    let cfg = InternetConfig {
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        sessions: Some(chaos_session_timers()),
        seed,
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    net.engine
        .faults_mut()
        .set_faultable(|m| matches!(m, Wire::Keepalive { .. } | Wire::Data { .. }));
    net
}

/// Textual dump of every (*,G) entry, ordered, for whole-tree
/// comparison between two runs.
fn tree_snapshot(net: &Internet) -> Vec<String> {
    let code = |t: &Target| match t {
        Target::Peer(r) => format!("peer{r}"),
        Target::Migp => "migp".to_string(),
    };
    let mut out = Vec::new();
    for d in net.graph.domains() {
        for br in &net.domain(d).routers {
            for (p, e) in br.bgmp.table().star_entries() {
                let children: Vec<String> = e.children.iter().map(&code).collect();
                out.push(format!(
                    "d{} r{} g={:?}/{} parent={:?} via={:?} children={:?}",
                    d.0,
                    br.id,
                    p.base(),
                    p.len(),
                    e.parent.as_ref().map(&code),
                    e.via_exit,
                    children,
                ));
            }
            let sg = br.bgmp.table().sg_entries().count();
            if sg > 0 {
                out.push(format!("d{} r{} sg_count={}", d.0, br.id, sg));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After an arbitrary fault schedule quiesces, (a) the quiescent
    /// invariants hold, and (b) the forwarding state equals what a
    /// fault-free network builds from the same topology — chaos must
    /// leave no scars.
    #[test]
    fn faulted_run_reconverges_to_fault_free_state(case in arb_case()) {
        let (graph, ids, edges) = build_graph(&case);
        let n = case.domains;
        let mut net = build_net(graph, case.seed);
        net.converge();
        let g = net.group_addr(ids[0]);
        let members: Vec<HostId> = ids
            .iter()
            .map(|d| HostId { domain: asn_of(*d), host: 1 })
            .collect();
        for m in &members {
            net.host_join(*m, g);
        }
        net.converge();
        prop_assert!(check_quiescent(&net).is_empty(), "never clean pre-fault");

        // ---- Fault phase -------------------------------------------
        if case.lossy {
            net.engine.faults_mut().set_default_model(FaultModel {
                loss: 0.10,
                dup: 0.05,
                jitter_ms: 30,
            });
        }
        let t0 = net.engine.now();
        let mut events: Vec<(u64, usize, bool)> = Vec::new(); // (ms, edge, up?)
        let mut horizon = 60_000u64;
        for &(e, at, dur) in &case.flaps {
            let e = e % edges.len();
            events.push((at * 1000, e, false));
            events.push(((at + dur) * 1000, e, true));
            horizon = horizon.max((at + dur) * 1000 + 10_000);
        }
        if let Some((v, at, down)) = case.crash {
            let v = ids[v % (n - 1) + 1];
            net.schedule_crash(v, SimDuration::from_secs(at), SimDuration::from_secs(down));
            horizon = horizon.max((at + down) * 1000 + 10_000);
        }
        events.sort_by_key(|(ms, _, _)| *ms);
        let mut down_edges: Vec<usize> = Vec::new();
        for (ms, e, up) in events {
            net.engine.run_until(t0 + SimDuration::from_millis(ms));
            let (a, b) = edges[e];
            if up {
                net.restore_link(ids[a], ids[b]);
                down_edges.retain(|x| *x != e);
            } else {
                net.cut_link(ids[a], ids[b]);
                down_edges.push(e);
            }
            let v = check_running(&net);
            prop_assert!(v.is_empty(), "mid-run violation: {v:?}");
        }
        net.engine.run_until(t0 + SimDuration::from_millis(horizon));

        // ---- Quiesce -----------------------------------------------
        net.engine.faults_mut().clear_models();
        for e in down_edges {
            let (a, b) = edges[e];
            net.restore_link(ids[a], ids[b]);
        }
        let mut clean = false;
        for _ in 0..40 {
            net.run_for(SimDuration::from_secs(5));
            if check_quiescent(&net).is_empty() {
                clean = true;
                break;
            }
        }
        prop_assert!(clean, "never re-converged: {:?}", check_quiescent(&net));
        // Let any in-flight refresh/retry activity settle fully before
        // comparing trees.
        net.run_for(SimDuration::from_secs(60));
        let v = check_quiescent(&net);
        prop_assert!(v.is_empty(), "settled state dirty again: {v:?}");

        // ---- Fault-free reference from the same topology -----------
        let (graph2, _, _) = build_graph(&case);
        let mut reference = build_net(graph2, case.seed);
        reference.converge();
        let g2 = reference.group_addr(ids[0]);
        prop_assert_eq!(g, g2, "static addressing must be topology-determined");
        for m in &members {
            reference.host_join(*m, g2);
        }
        reference.converge();

        prop_assert_eq!(tree_snapshot(&net), tree_snapshot(&reference));
    }
}
