//! Failure injection: link failures under live trees. BGP must fail
//! over where an alternate path exists, and BGMP must reroute the
//! affected tree state along the post-failover routes.

use masc_bgmp_core::analysis::{shared_tree_edges, verify_tree};
use masc_bgmp_core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig};
use migp::MigpKind;
use topology::{DomainGraph, DomainId};

/// A ring of four domains: every pair has two disjoint paths.
fn ring4() -> (DomainGraph, Vec<DomainId>) {
    let mut g = DomainGraph::new();
    let ids: Vec<DomainId> = ["A", "B", "C", "D"]
        .iter()
        .map(|n| g.add_domain(*n))
        .collect();
    g.add_peering(ids[0], ids[1]);
    g.add_peering(ids[1], ids[2]);
    g.add_peering(ids[2], ids[3]);
    g.add_peering(ids[3], ids[0]);
    (g, ids)
}

fn build() -> (Internet, Vec<DomainId>) {
    let (graph, ids) = ring4();
    let cfg = InternetConfig {
        migp: MigpKind::Cbt,
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    net.converge();
    (net, ids)
}

#[test]
fn bgp_fails_over_on_link_loss() {
    let (mut net, ids) = build();
    let (a, b, c) = (ids[0], ids[1], ids[2]);
    let range_c = net.static_ranges[c.0].unwrap();

    // A reaches C's range both ways; fail A-B and make sure the route
    // via D survives.
    net.fail_link(a, b);
    net.converge();
    let ok = net
        .domain(a)
        .routers
        .iter()
        .any(|br| br.speaker.rib().lookup_group(range_c.base()).is_some());
    assert!(ok, "A must still reach C's range via D after A-B fails");
}

#[test]
fn tree_survives_link_failure_for_new_data() {
    let (mut net, ids) = build();
    let (a, b, c, d) = (ids[0], ids[1], ids[2], ids[3]);
    let g = net.group_addr(c);

    // Members in A and C (root domain C).
    let ha = HostId {
        domain: asn_of(a),
        host: 1,
    };
    let hc = HostId {
        domain: asn_of(c),
        host: 1,
    };
    net.host_join(ha, g);
    net.host_join(hc, g);
    net.converge();
    assert!(verify_tree(&net, g, c, &[a, c]).is_empty());

    // Find which side A's branch went through, and fail that link.
    let edges = shared_tree_edges(&net, g);
    let via_b = edges
        .iter()
        .any(|(x, y)| (*x == a && *y == b) || (*x == b && *y == c));
    let (fa, fb) = if via_b { (a, b) } else { (a, d) };
    net.fail_link(fa, fb);
    net.converge();

    // The tree must have rerouted: still rooted at C, A still on it.
    let violations = verify_tree(&net, g, c, &[a, c]);
    assert!(
        violations.is_empty(),
        "post-failover tree broken: {violations:?}"
    );
    let edges_after = shared_tree_edges(&net, g);
    assert!(
        !edges_after
            .iter()
            .any(|(x, y)| (*x == fa && *y == fb) || (*x == fb && *y == fa)),
        "tree still uses the dead link: {edges_after:?}"
    );

    // Data still flows, exactly once.
    let sender = HostId {
        domain: asn_of(d),
        host: 5,
    };
    let id = net.send_data(sender, g);
    net.converge();
    let got = net.deliveries(id);
    assert_eq!(got, vec![ha, hc], "delivery after failover: {got:?}");
    assert_eq!(net.total_duplicates(), 0);
}

#[test]
fn heal_restores_shortest_routes() {
    let (mut net, ids) = build();
    let (a, b, c) = (ids[0], ids[1], ids[2]);
    let range_b = net.static_ranges[b.0].unwrap();

    net.fail_link(a, b);
    net.converge();
    // A still reaches B's range, the long way (via D, C).
    let hops_during = net
        .domain(a)
        .routers
        .iter()
        .filter_map(|br| br.speaker.rib().lookup_group(range_b.base()))
        .map(|r| r.as_path.len())
        .min()
        .expect("failover route");
    assert!(hops_during >= 3, "failover path must be the long way");

    net.heal_link(a, b);
    net.converge();
    let hops_after = net
        .domain(a)
        .routers
        .iter()
        .filter_map(|br| br.speaker.rib().lookup_group(range_b.base()))
        .map(|r| r.as_path.len())
        .min()
        .expect("restored route");
    assert!(hops_after < hops_during, "heal must restore the short path");
    let _ = c;
}

#[test]
fn partitioned_member_rejoins_after_heal() {
    let (mut net, ids) = build();
    let (a, b, c, d) = (ids[0], ids[1], ids[2], ids[3]);
    let g = net.group_addr(c);
    let ha = HostId {
        domain: asn_of(a),
        host: 1,
    };
    let hc = HostId {
        domain: asn_of(c),
        host: 1,
    };
    net.host_join(ha, g);
    net.host_join(hc, g);
    net.converge();

    // Cut BOTH of A's links: A is fully partitioned.
    net.fail_link(a, b);
    net.fail_link(a, d);
    net.converge();

    // Data sent in the majority side reaches C but cannot reach A.
    let sender = HostId {
        domain: asn_of(b),
        host: 5,
    };
    let id = net.send_data(sender, g);
    net.converge();
    let got = net.deliveries(id);
    assert!(got.contains(&hc), "majority-side member still served");
    assert!(!got.contains(&ha), "partitioned member cannot receive");

    // Heal; A's member re-joins (host re-announces membership — the
    // DWR refresh a real MIGP would do periodically).
    net.heal_link(a, b);
    net.heal_link(a, d);
    net.converge();
    net.host_join(ha, g); // membership refresh
    net.converge();
    let id2 = net.send_data(sender, g);
    net.converge();
    let got2 = net.deliveries(id2);
    assert!(
        got2.contains(&ha),
        "healed member must receive again: {got2:?}"
    );
    assert!(got2.contains(&hc));
    assert_eq!(net.total_duplicates(), 0);
}
