//! The paper's figure-3(b) narrative, reproduced end to end: data
//! encapsulation inside a DVMRP domain with two border routers, and the
//! source-specific branch that removes it (§5.3).

use masc_bgmp_core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig};
use migp::MigpKind;
use topology::{DomainGraph, DomainId};

/// Figure-3 topology (same as the end-to-end tests): F is a customer
/// of both B and A, so F has two border routers — F1 (to B) and F2
/// (to A) — and its shortest path to D runs through F2 while its
/// shared-tree join for a B-rooted group runs through F1.
fn fig3() -> (DomainGraph, Vec<DomainId>) {
    let mut g = DomainGraph::new();
    let ids: Vec<DomainId> = ["A", "B", "C", "D", "E", "F", "G", "H"]
        .iter()
        .map(|n| g.add_domain(*n))
        .collect();
    let (a, b, c, d, e, f, gg, h) = (
        ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6], ids[7],
    );
    g.add_peering(a, d);
    g.add_peering(a, e);
    g.add_peering(d, e);
    g.add_provider_customer(a, b);
    g.add_provider_customer(a, c);
    g.add_provider_customer(b, f);
    g.add_provider_customer(a, f);
    g.add_provider_customer(c, gg);
    g.add_provider_customer(gg, h);
    (g, ids)
}

fn setup() -> (Internet, Vec<DomainId>) {
    let (graph, ids) = fig3();
    let cfg = InternetConfig {
        migp: MigpKind::Dvmrp, // strict RPF: the protocol that needs encapsulation
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    net.converge();
    (net, ids)
}

fn host(d: DomainId, n: u32) -> HostId {
    HostId {
        domain: asn_of(d),
        host: n,
    }
}

/// Paper §5.3: members in B, C, D, F, H; B is the root domain; a
/// source S in domain D sends. F's data arrives on the shared tree at
/// F1, fails internal RPF (shortest path to D is via F2), and must be
/// encapsulated F1→F2. F2 then builds a source-specific branch via A;
/// once native data flows, the encapsulation stops.
#[test]
fn encapsulation_then_source_branch_replaces_it() {
    let (mut net, ids) = setup();
    let (b, c, d, f, h) = (ids[1], ids[2], ids[3], ids[5], ids[7]);
    let g = net.group_addr(b);

    let members = [host(b, 1), host(c, 1), host(f, 1), host(h, 1)];
    for m in members {
        net.host_join(m, g);
    }
    // D also has a member (so its domain is on the tree, as in the
    // figure) — and hosts the source.
    let hd = host(d, 1);
    net.host_join(hd, g);
    net.converge();

    let all_members = [members[0], members[1], members[2], members[3], hd];
    let source = host(d, 9); // non-member sender in D, like S

    // Packet 1: delivered via the shared tree; F's copy arrives at F1
    // and must be encapsulated to F2.
    let before = net.total_encapsulations();
    let id1 = net.send_data(source, g);
    net.converge();
    let got1 = net.deliveries(id1);
    let want: Vec<HostId> = all_members.to_vec();
    let mut want_sorted = want.clone();
    want_sorted.sort();
    assert_eq!(got1, want_sorted, "packet 1 must reach every member");
    let encaps_1 = net.total_encapsulations();
    assert!(
        encaps_1 > before,
        "packet 1 must have been encapsulated inside F"
    );

    // The branch was initiated; let joins settle, then send more data.
    let id2 = net.send_data(source, g);
    net.converge();
    assert_eq!(
        net.deliveries(id2),
        want_sorted,
        "packet 2 must reach every member"
    );

    // Packet 3: by now the source-specific branch carries S's data
    // natively into F2 and the encapsulating path has been pruned —
    // no further encapsulations, no duplicates.
    let encaps_before_3 = net.total_encapsulations();
    let id3 = net.send_data(source, g);
    net.converge();
    assert_eq!(
        net.deliveries(id3),
        want_sorted,
        "packet 3 must reach every member"
    );
    assert_eq!(
        net.total_encapsulations(),
        encaps_before_3,
        "the source-specific branch must have replaced encapsulation"
    );

    // (S,G) state exists somewhere in F (the decapsulating router F2).
    let f_actor = net.domain(f);
    let sg_in_f = f_actor
        .routers
        .iter()
        .any(|br| br.bgmp.table().sg_entries().count() > 0);
    assert!(sg_in_f, "F must hold source-specific state");

    // Other sources are unaffected: data from a host in C still
    // arrives everywhere via the shared tree.
    let other = host(c, 9);
    let id4 = net.send_data(other, g);
    net.converge();
    let mut expect4: Vec<HostId> = all_members
        .iter()
        .copied()
        .filter(|m| *m != members[1])
        .collect();
    expect4.push(members[1]);
    expect4.sort();
    expect4.dedup();
    // C's own member also receives (different router in C or same).
    let got4 = net.deliveries(id4);
    assert_eq!(got4, expect4, "shared tree still serves other sources");
}

/// Disabling source branches leaves the system functional but
/// permanently paying the encapsulation cost — the ablation's
/// comparison point.
#[test]
fn without_source_branches_encapsulation_persists() {
    let (graph, ids) = fig3();
    let cfg = InternetConfig {
        migp: MigpKind::Dvmrp,
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    // Switch off branch building everywhere.
    for d in net.graph.domains() {
        net.domain_mut(d).source_branches = false;
    }
    net.converge();
    let (b, d, f) = (ids[1], ids[3], ids[5]);
    let g = net.group_addr(b);
    for m in [host(b, 1), host(f, 1), host(d, 1)] {
        net.host_join(m, g);
    }
    net.converge();
    let source = host(d, 9);
    let e0 = net.total_encapsulations();
    for _ in 0..3 {
        let id = net.send_data(source, g);
        net.converge();
        assert_eq!(net.deliveries(id).len(), 3, "members still served");
    }
    let e3 = net.total_encapsulations();
    assert!(
        e3 >= e0 + 3,
        "every packet keeps paying the encapsulation cost ({e0} -> {e3})"
    );
    assert_eq!(net.total_duplicates(), 0);
}

/// CBT inside F (no strict RPF): no encapsulation is ever needed —
/// MIGP independence changes intra-domain cost, not correctness.
#[test]
fn no_encapsulation_with_bidirectional_migp() {
    let (graph, ids) = fig3();
    let cfg = InternetConfig {
        migp: MigpKind::Cbt,
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    net.converge();
    let (b, d, f) = (ids[1], ids[3], ids[5]);
    let g = net.group_addr(b);
    for m in [host(b, 1), host(f, 1), host(d, 1)] {
        net.host_join(m, g);
    }
    net.converge();
    let source = host(d, 9);
    let id = net.send_data(source, g);
    net.converge();
    assert_eq!(net.deliveries(id).len(), 3);
    assert_eq!(
        net.total_encapsulations(),
        0,
        "CBT accepts any entry router"
    );
}
