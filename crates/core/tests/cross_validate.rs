//! Cross-validation: the analytic tree builder used by the figure-4
//! sweep must agree with the trees the full protocol stack builds.

use masc_bgmp_core::analysis::{on_tree_domains, shared_tree_edges, verify_tree};
use masc_bgmp_core::trees::BidirTree;
use masc_bgmp_core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig};
use migp::MigpKind;
use topology::{internet_like, DomainId, InternetSpec};

/// Builds a medium Internet-like graph, runs real joins through the
/// protocol stack, and compares the resulting on-tree domain set with
/// the analytic construction.
#[test]
fn protocol_tree_matches_analytic_tree() {
    for seed in [3u64, 17] {
        let graph = internet_like(&InternetSpec {
            n: 60,
            backbones: 4,
            attach: 2,
            extra_peerings: 3,
            seed,
        });
        let cfg = InternetConfig {
            migp: MigpKind::Dvmrp,
            borders: BorderPlan::Single,
            addressing: Addressing::Static,
            seed,
            ..Default::default()
        };
        let mut net = Internet::build(graph.clone(), &cfg);
        net.converge();

        // Root domain: 5. Receivers: a scattered handful.
        let root = DomainId(5);
        let receivers: Vec<DomainId> = [9, 22, 37, 48, 59, 13]
            .iter()
            .map(|i| DomainId(*i))
            .collect();
        let g = net.group_addr(root);
        // The root-domain initiator is a member too (the paper's
        // default: the initiator's domain roots the tree).
        net.host_join(
            HostId {
                domain: asn_of(root),
                host: 1,
            },
            g,
        );
        for r in &receivers {
            net.host_join(
                HostId {
                    domain: asn_of(*r),
                    host: 1,
                },
                g,
            );
        }
        net.converge();

        // Protocol state must form a valid tree.
        let violations = verify_tree(&net, g, root, &receivers);
        assert!(violations.is_empty(), "seed {seed}: {violations:?}");

        // Compare on-tree domain sets. The analytic builder joins each
        // member along the deterministic BFS path toward the root; the
        // protocol follows the G-RIB, which selects shortest AS paths
        // with deterministic tie-breaks. Tie-breaking can differ, so we
        // compare sizes within slack and require every member on both.
        let analytic = BidirTree::build(&graph, root, &receivers);
        let protocol_nodes = on_tree_domains(&net, g);
        for r in &receivers {
            assert!(
                protocol_nodes.contains(r),
                "seed {seed}: member {r:?} off protocol tree"
            );
            assert!(
                analytic.contains(*r),
                "seed {seed}: member {r:?} off analytic tree"
            );
        }
        let a_size = analytic.size();
        let p_size = protocol_nodes.len() + 1; // + root (held as Local state)
        let diff = (a_size as i64 - p_size as i64).abs();
        assert!(
            diff <= receivers.len() as i64,
            "seed {seed}: tree sizes diverge too much: analytic {a_size} vs protocol {p_size}"
        );

        // Edge count of a tree == nodes - 1 (acyclicity double-check).
        let edges = shared_tree_edges(&net, g);
        assert!(
            edges.len() + 1 >= protocol_nodes.len(),
            "seed {seed}: protocol tree disconnected: {} edges, {} nodes",
            edges.len(),
            protocol_nodes.len()
        );
    }
}

/// Path lengths measured by actually routing packets hop-by-hop over
/// the protocol tree must match the analytic `sender_path_len` on a
/// line topology where there is exactly one path.
#[test]
fn data_path_lengths_match_on_line() {
    let mut g = topology::DomainGraph::new();
    let ids: Vec<DomainId> = (0..7).map(|i| g.add_domain(format!("D{i}"))).collect();
    for w in ids.windows(2) {
        g.add_provider_customer(w[0], w[1]);
    }
    let cfg = InternetConfig {
        migp: MigpKind::Cbt,
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(g.clone(), &cfg);
    net.converge();

    let root = ids[0];
    let group = net.group_addr(root);
    let members = [ids[2], ids[5]];
    for m in members {
        net.host_join(
            HostId {
                domain: asn_of(m),
                host: 1,
            },
            group,
        );
    }
    net.converge();

    // Sender at the far end (domain 6, off-tree beyond domain 5).
    let sender = HostId {
        domain: asn_of(ids[6]),
        host: 3,
    };
    let id = net.send_data(sender, group);
    net.converge();
    let got = net.deliveries(id);
    assert_eq!(got.len(), 2, "both members receive: {got:?}");

    // Analytic prediction: sender walks 1 hop to the tree at domain 5,
    // then 0 / 3 hops along the tree.
    let tree = BidirTree::build(&g, root, &members);
    assert_eq!(tree.sender_path_len(ids[6], ids[5]), Some(1));
    assert_eq!(tree.sender_path_len(ids[6], ids[2]), Some(4));
}
