//! End-to-end chaos runs: loss + duplication + jitter + silent link
//! flaps + a node crash/restart, with invariants checked mid-run and
//! full re-convergence demanded afterwards.

use masc_bgmp_core::chaos::chaos_session_timers;
use masc_bgmp_core::chaos::{run_chaos, ChaosConfig};
use masc_bgmp_core::invariants::check_quiescent;
use masc_bgmp_core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig, Wire};
use mcast_addr::Secs;
use simnet::{FaultModel, SimDuration};
use topology::{DomainGraph, DomainId};

/// The issue's acceptance scenario: loss ≥ 10%, at least 5 flaps and a
/// crash/restart. The run must stay invariant-clean mid-run (asserted
/// inside the harness), re-converge after the faults cease, and pass a
/// final exactly-once delivery probe.
#[test]
fn chaos_run_reconverges_with_clean_invariants() {
    let out = run_chaos(&ChaosConfig::default());
    assert!(
        out.quiescent_violations.is_empty(),
        "violations after quiesce: {:?}",
        out.quiescent_violations
    );
    assert!(out.convergence_ms.is_some(), "never re-converged");
    assert!(out.probe_clean, "post-quiesce probe lost or duplicated");
    assert!(out.fault_stats.lost > 0, "loss model never fired");
    assert!(out.fault_stats.duplicated > 0, "dup model never fired");
    assert!(out.fault_stats.crashes >= 1, "no crash was injected");
    assert!(
        out.fault_stats.restarts >= 1,
        "crashed node never restarted"
    );
    assert!(
        out.sent > 0 && out.delivery_ratio > 0.2,
        "chaos ate everything: {}",
        out.delivery_ratio
    );
}

/// Byte-reproducibility: the same seed gives the same fingerprint
/// (forwarding state, logs, fault counters), a different seed does
/// not.
#[test]
fn chaos_is_byte_reproducible_for_a_fixed_seed() {
    let cfg = ChaosConfig {
        seed: 42,
        ..ChaosConfig::default()
    };
    let a = run_chaos(&cfg);
    let b = run_chaos(&cfg);
    assert_eq!(
        a.fingerprint, b.fingerprint,
        "same seed must replay identically"
    );
    assert_eq!(a.fault_stats.lost, b.fault_stats.lost);
    assert_eq!(a.fault_stats.duplicated, b.fault_stats.duplicated);
    assert_eq!(a.delivered, b.delivered);

    let c = run_chaos(&ChaosConfig {
        seed: 43,
        ..ChaosConfig::default()
    });
    assert_ne!(
        a.fingerprint, c.fingerprint,
        "different seeds should diverge"
    );
}

/// The sharded engine is one determinism family: the same chaos
/// scenario produces byte-identical outcomes — fingerprint, event
/// totals, fault draws, convergence time — at every shard count ≥ 1.
#[test]
fn sharded_chaos_outcome_is_shard_count_invariant() {
    let base = ChaosConfig {
        seed: 23,
        shards: 1,
        ..ChaosConfig::default()
    };
    let a = run_chaos(&base);
    assert!(
        a.quiescent_violations.is_empty(),
        "sharded run never came clean: {:?}",
        a.quiescent_violations
    );
    assert!(a.fault_stats.lost > 0, "loss model never fired");
    assert!(a.fault_stats.crashes >= 1, "no crash was injected");
    for k in [2, 4] {
        let b = run_chaos(&ChaosConfig {
            shards: k,
            ..base.clone()
        });
        assert_eq!(a.fingerprint, b.fingerprint, "shards=1 vs shards={k}");
        assert_eq!(a.events, b.events, "event totals at shards={k}");
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.convergence_ms, b.convergence_ms);
        assert_eq!(
            format!("{:?}", a.fault_stats),
            format!("{:?}", b.fault_stats),
            "fault draws diverged at shards={k}"
        );
    }
}

fn ring(n: usize) -> (DomainGraph, Vec<DomainId>) {
    let mut g = DomainGraph::new();
    let ids: Vec<DomainId> = (0..n).map(|i| g.add_domain(format!("R{i}"))).collect();
    for i in 0..n {
        g.add_peering(ids[i], ids[(i + 1) % n]);
    }
    (g, ids)
}

/// A silent cut (no control event) must be detected by hold expiry and
/// repaired; the silent restore must be found by the retry machinery.
#[test]
fn sessions_detect_silent_cut_and_silent_heal() {
    let (graph, ids) = ring(4);
    let cfg = InternetConfig {
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        sessions: Some(chaos_session_timers()),
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    net.converge();
    let (a, b, c) = (ids[0], ids[1], ids[2]);
    let g = net.group_addr(c);
    let ha = HostId {
        domain: asn_of(a),
        host: 1,
    };
    let hc = HostId {
        domain: asn_of(c),
        host: 1,
    };
    net.host_join(ha, g);
    net.host_join(hc, g);
    net.converge();
    assert!(check_quiescent(&net).is_empty());

    // Cut silently; within hold + repair time the tree must have moved
    // off the dead link and data must flow the long way round.
    net.cut_link(a, b);
    net.run_for(SimDuration::from_secs(60));
    let v = check_quiescent(&net);
    assert!(v.is_empty(), "state not repaired after silent cut: {v:?}");
    let sender = HostId {
        domain: asn_of(ids[3]),
        host: 5,
    };
    let id = net.send_data(sender, g);
    net.run_for(SimDuration::from_secs(20));
    assert_eq!(net.deliveries(id), vec![ha, hc]);

    // Restore silently; sessions re-establish and the next probe still
    // delivers exactly once.
    net.restore_link(a, b);
    net.run_for(SimDuration::from_secs(60));
    let v = check_quiescent(&net);
    assert!(v.is_empty(), "state broken after silent heal: {v:?}");
    let id2 = net.send_data(sender, g);
    net.run_for(SimDuration::from_secs(20));
    assert_eq!(net.deliveries(id2), vec![ha, hc]);
    assert_eq!(net.total_duplicates(), 0);
}

/// Asymmetric keepalive loss: only one direction of a peering loses
/// its keepalives, so exactly one side hold-expires and flushes while
/// the other side's session never drops. On reconnect the flushed
/// side's bumped session epoch must bounce the survivor into a full
/// resync — without it, the survivor never replays its table and the
/// flushed side's routes (and the member behind them) stay gone.
#[test]
fn one_sided_hold_expiry_resyncs_on_reconnect() {
    let mut graph = DomainGraph::new();
    let a = graph.add_domain("A");
    let b = graph.add_domain("B");
    graph.add_peering(a, b);
    let cfg = InternetConfig {
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        sessions: Some(chaos_session_timers()),
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    net.converge();
    let g = net.group_addr(a);
    let member = HostId {
        domain: asn_of(b),
        host: 1,
    };
    net.host_join(member, g);
    net.converge();
    assert!(check_quiescent(&net).is_empty());

    // Drop only the keepalives A's border router sends toward B; B's
    // keepalives keep arriving at A, so A's session never dies.
    assert_eq!(
        net.domain(a).routers[0].id,
        1,
        "router ids are allocation-ordered"
    );
    net.engine
        .faults_mut()
        .set_faultable(|m| matches!(m, Wire::Keepalive { from: 1, .. }));
    net.engine.faults_mut().set_default_model(FaultModel {
        loss: 1.0,
        dup: 0.0,
        jitter_ms: 0,
    });
    net.run_for(SimDuration::from_secs(60));
    assert!(net.engine.faults().stats().lost > 0, "drop never fired");

    // Heal: B reconnects and its bumped epoch must force A to flush
    // and resync, re-advertising the group range B lost.
    net.engine.faults_mut().clear_models();
    net.run_for(SimDuration::from_secs(120));
    let v = check_quiescent(&net);
    assert!(v.is_empty(), "state broken after one-sided expiry: {v:?}");
    let sender = HostId {
        domain: asn_of(a),
        host: 5,
    };
    let id = net.send_data(sender, g);
    net.run_for(SimDuration::from_secs(20));
    assert_eq!(net.deliveries(id), vec![member]);
    assert_eq!(net.total_duplicates(), 0);
}

/// A crash shorter than the hold time: neighbours never see the
/// session die, but the boot-generation bump in the restarted node's
/// keepalives must force a flush/resync bounce, and members in the
/// crashed domain must be re-joined onto the tree.
#[test]
fn short_crash_is_recovered_via_generation_bounce() {
    let (graph, ids) = ring(5);
    let cfg = InternetConfig {
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        sessions: Some(chaos_session_timers()),
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    net.converge();
    let root = ids[0];
    let victim = ids[2];
    let g = net.group_addr(root);
    let members: Vec<HostId> = ids
        .iter()
        .map(|d| HostId {
            domain: asn_of(*d),
            host: 1,
        })
        .collect();
    for m in &members {
        net.host_join(*m, g);
    }
    net.converge();
    assert!(check_quiescent(&net).is_empty());

    // 8 s outage < 15 s hold: detection must come from the generation
    // bounce, not hold expiry.
    net.schedule_crash(victim, SimDuration::from_secs(2), SimDuration::from_secs(8));
    net.run_for(SimDuration::from_secs(120));
    let v = check_quiescent(&net);
    assert!(v.is_empty(), "state broken after short crash: {v:?}");
    assert_eq!(net.engine.faults().stats().crashes, 1);
    assert_eq!(net.engine.faults().stats().restarts, 1);

    let sender = HostId {
        domain: asn_of(ids[4]),
        host: 5,
    };
    let id = net.send_data(sender, g);
    net.run_for(SimDuration::from_secs(20));
    assert_eq!(net.deliveries(id), members, "crashed domain's member lost");
}

/// MASC claims under lost and duplicated claim messages: allocation
/// must still converge (the waiting period simply restarts on retry)
/// and sibling domains must end up with disjoint ranges.
#[test]
fn masc_claims_survive_loss_and_duplication() {
    use masc::MascConfig;
    let (graph, ids) = ring(4);
    let mc = MascConfig {
        wait_period: 30,
        claim_retry_backoff: 15,
        ..MascConfig::default()
    };
    let cfg = InternetConfig {
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Masc(mc),
        sessions: Some(chaos_session_timers()),
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    // Only MASC traffic is disturbed: claims and collision
    // announcements get lost, duplicated and delayed.
    net.engine
        .faults_mut()
        .set_faultable(|m| matches!(m, Wire::Masc { .. }));
    net.engine.faults_mut().set_default_model(FaultModel {
        loss: 0.2,
        dup: 0.2,
        jitter_ms: 500,
    });
    net.converge();

    // Two sibling domains request blocks concurrently.
    let mut got = [None, None];
    for round in 0..40 {
        if got[0].is_none() {
            got[0] = net.try_group_addr(ids[1]);
        }
        if got[1].is_none() {
            got[1] = net.try_group_addr(ids[2]);
        }
        if got.iter().all(|x| x.is_some()) {
            break;
        }
        net.run_for(SimDuration::from_secs(60));
        let _ = round;
    }
    assert!(net.engine.faults().stats().lost > 0, "loss never fired");
    let (a, b) = (
        got[0].expect("domain 1 allocated"),
        got[1].expect("domain 2 allocated"),
    );
    assert_ne!(a, b, "colliding allocations must not both be granted");

    // The granted ranges themselves must be disjoint.
    let ra = net.domain(ids[1]).masc.as_ref().unwrap().granted_ranges();
    let rb = net.domain(ids[2]).masc.as_ref().unwrap().granted_ranges();
    let live = |v: &[(mcast_addr::Prefix, Secs)]| -> Vec<mcast_addr::Prefix> {
        v.iter().map(|(p, _)| *p).collect()
    };
    for pa in live(&ra) {
        for pb in live(&rb) {
            // Prefixes overlap iff one contains the other's base.
            assert!(
                !pa.contains(pb.base()) && !pb.contains(pa.base()),
                "overlapping grants: {pa:?} vs {pb:?}"
            );
        }
    }
}
