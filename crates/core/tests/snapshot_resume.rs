//! Resume equivalence at the full-internet level: a run checkpointed
//! mid-chaos and resumed onto a freshly built network must be
//! indistinguishable — byte-identical state fingerprint, identical
//! fault counters, identical invariant verdicts — from the same run
//! left uninterrupted.
//!
//! Also exercises the decode failure paths: every truncation of a
//! real checkpoint must come back as an error, never a panic.

use masc_bgmp_core::chaos::{chaos_session_timers, state_fingerprint};
use masc_bgmp_core::invariants::check_quiescent;
use masc_bgmp_core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig, Wire};
use mcast_addr::McastAddr;
use simnet::{FaultModel, SimDuration, SimTime};
use topology::{DomainGraph, DomainId};

fn ring(n: usize) -> (DomainGraph, Vec<DomainId>) {
    let mut g = DomainGraph::new();
    let ids: Vec<DomainId> = (0..n).map(|i| g.add_domain(format!("S{i}"))).collect();
    for i in 0..n {
        g.add_peering(ids[i], ids[(i + 1) % n]);
    }
    (g, ids)
}

/// Builds the network shell. Everything here is *construction-time*
/// configuration that a resuming caller must reproduce; all dynamic
/// state comes from the snapshot.
fn build_net(n: usize, seed: u64) -> (Internet, Vec<DomainId>) {
    let (graph, ids) = ring(n);
    let cfg = InternetConfig {
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        sessions: Some(chaos_session_timers()),
        seed,
        ..Default::default()
    };
    let mut net = Internet::build(graph, &cfg);
    // The faultable-class filter is a fn pointer — configuration, not
    // snapshotted state — so it is re-applied on every build.
    net.engine
        .faults_mut()
        .set_faultable(|m| matches!(m, Wire::Keepalive { .. } | Wire::Data { .. }));
    (net, ids)
}

/// One externally driven action in the scripted fault schedule.
#[derive(Clone, Copy)]
enum Action {
    /// Silently cut ring edge (i, i+1).
    Cut(usize),
    /// Silently restore it.
    Restore(usize),
    /// Send a data packet from a host in domain `i`.
    Send(usize),
}

/// Applies every schedule entry with `from_ms <= t < to_ms` at its
/// absolute time, then runs to `to_ms`. Splitting a run at any
/// boundary and re-driving the tail therefore replays the exact same
/// external stimulus.
fn drive(
    net: &mut Internet,
    ids: &[DomainId],
    g: McastAddr,
    schedule: &[(u64, Action)],
    t0: SimTime,
    from_ms: u64,
    to_ms: u64,
) {
    let n = ids.len();
    for &(ms, act) in schedule {
        if ms < from_ms || ms >= to_ms {
            continue;
        }
        net.engine.run_until(t0 + SimDuration::from_millis(ms));
        match act {
            Action::Cut(e) => net.cut_link(ids[e], ids[(e + 1) % n]),
            Action::Restore(e) => net.restore_link(ids[e], ids[(e + 1) % n]),
            Action::Send(d) => {
                let h = HostId {
                    domain: asn_of(ids[d]),
                    host: 9,
                };
                net.send_data(h, g);
            }
        }
    }
    net.engine.run_until(t0 + SimDuration::from_millis(to_ms));
}

/// Shared scenario: members everywhere, ambient loss/dup/jitter, a
/// scheduled crash, and silent flaps — checkpointed mid-chaos.
///
/// Returns (monolithic net, resumed net) both driven to the same
/// simulated time over the same schedule.
fn run_split(seed: u64, cp_ms: u64, end_ms: u64) -> (Internet, Internet) {
    let n = 6;
    let schedule: &[(u64, Action)] = &[
        (2_000, Action::Send(2)),
        (5_000, Action::Cut(0)),
        (9_000, Action::Send(3)),
        (16_000, Action::Restore(0)),
        (21_000, Action::Send(1)),
        (27_000, Action::Cut(2)),
        (33_000, Action::Send(4)),
        (41_000, Action::Restore(2)),
        (47_000, Action::Send(5)),
        (55_000, Action::Send(0)),
    ];

    // ---- Monolithic reference run ------------------------------
    let (mut mono, ids) = build_net(n, seed);
    mono.converge();
    let g = mono.group_addr(ids[0]);
    for d in &ids {
        mono.host_join(
            HostId {
                domain: asn_of(*d),
                host: 1,
            },
            g,
        );
    }
    mono.converge();
    assert!(check_quiescent(&mono).is_empty(), "never clean pre-fault");
    mono.engine.faults_mut().set_default_model(FaultModel {
        loss: 0.10,
        dup: 0.05,
        jitter_ms: 30,
    });
    // Crash scheduled *before* the checkpoint: the NodeDown/NodeUp
    // events live in the engine queue and must survive the snapshot.
    mono.schedule_crash(
        ids[3],
        SimDuration::from_secs(12),
        SimDuration::from_secs(10),
    );
    let t0 = mono.engine.now();

    drive(&mut mono, &ids, g, schedule, t0, 0, cp_ms);
    let bytes = mono.checkpoint().expect("checkpoint mid-chaos");
    drive(&mut mono, &ids, g, schedule, t0, cp_ms, end_ms);

    // ---- Resumed run -------------------------------------------
    // A fresh shell with the same construction inputs; every piece of
    // dynamic state — RIBs, trees, sessions, leases, logs, engine
    // queue, RNG, fault counters — comes from the snapshot.
    let (mut resumed, ids2) = build_net(n, seed);
    resumed.resume_from(&bytes).expect("resume");
    drive(&mut resumed, &ids2, g, schedule, t0, cp_ms, end_ms);

    (mono, resumed)
}

/// The headline contract: run(0→T2) ≡ checkpoint(T1) + resume(T1→T2),
/// with the checkpoint taken in the middle of the chaos phase (link
/// down, crash pending, lossy fault models armed, packets in flight).
#[test]
fn resume_mid_chaos_is_byte_identical_to_monolithic_run() {
    let (mono, resumed) = run_split(7, 30_500, 70_000);

    assert_eq!(mono.engine.now(), resumed.engine.now());
    assert_eq!(
        state_fingerprint(&mono),
        state_fingerprint(&resumed),
        "resumed run diverged from the monolithic reference"
    );
    assert_eq!(
        format!("{:?}", mono.engine.faults().stats()),
        format!("{:?}", resumed.engine.faults().stats()),
        "fault counters diverged"
    );
    assert_eq!(
        format!("{:?}", mono.engine.stats()),
        format!("{:?}", resumed.engine.stats()),
        "engine counters diverged"
    );
    assert_eq!(check_quiescent(&mono), check_quiescent(&resumed));

    let fs = mono.engine.faults().stats();
    assert!(fs.lost > 0, "loss model never fired before comparison");
    assert!(fs.crashes >= 1, "crash never fired before comparison");
}

/// After the faults cease, both copies must reconverge to the same
/// clean state: the snapshot carries enough to finish the run, not
/// just to match an instantaneous fingerprint.
#[test]
fn resumed_run_reconverges_identically() {
    let (mut mono, mut resumed) = run_split(11, 24_000, 60_000);

    for net in [&mut mono, &mut resumed] {
        net.engine.faults_mut().clear_models();
        net.run_for(SimDuration::from_secs(120));
    }
    let (va, vb) = (check_quiescent(&mono), check_quiescent(&resumed));
    assert_eq!(va, vb, "post-quiesce verdicts diverged");
    assert!(va.is_empty(), "monolithic run never re-converged: {va:?}");
    assert_eq!(state_fingerprint(&mono), state_fingerprint(&resumed));
}

/// Checkpoint placement must not matter: several split points across
/// the same schedule all land on the monolithic fingerprint.
#[test]
fn any_split_point_lands_on_the_same_state() {
    let (reference, _) = run_split(19, 30_000, 48_000);
    let want = state_fingerprint(&reference);
    for cp in [6_500, 20_000, 39_000] {
        let (_, resumed) = run_split(19, cp, 48_000);
        assert_eq!(
            state_fingerprint(&resumed),
            want,
            "split at {cp}ms diverged"
        );
    }
}

/// Every truncation of a real checkpoint must decode to an error —
/// never a panic, never a silent success.
#[test]
fn truncated_checkpoints_error_cleanly() {
    let (mut net, ids) = build_net(4, 3);
    net.converge();
    let g = net.group_addr(ids[0]);
    net.host_join(
        HostId {
            domain: asn_of(ids[1]),
            host: 1,
        },
        g,
    );
    net.converge();
    let bytes = net.checkpoint().expect("checkpoint");

    // Cut at every prefix length (stride 1 would take minutes on a
    // multi-kilobyte blob for no extra coverage; primes avoid hitting
    // only field boundaries).
    let (mut fresh, _) = build_net(4, 3);
    for cut in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
        let err = fresh.resume_from(&bytes[..cut]);
        assert!(err.is_err(), "truncation at {cut} decoded successfully");
    }

    // Flipped bytes must never panic; most flips are decode errors,
    // and any that decode leave the shell still usable.
    for pos in (0..bytes.len()).step_by(131) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xff;
        let _ = fresh.resume_from(&bad);
    }

    // The pristine blob still restores after all the failed attempts.
    fresh.resume_from(&bytes).expect("clean blob restores");
    assert_eq!(state_fingerprint(&fresh), state_fingerprint(&net));
}

/// The sharded engine's checkpoint contract: a checkpoint taken
/// mid-chaos is byte-identical across the shard counts that write it,
/// and resumes byte-identically at a *different* shard count — the
/// blob is shard-count-invariant, so the fleet size at resume time is
/// free to change.
#[test]
fn sharded_checkpoint_resumes_across_shard_counts() {
    let (n, seed, cp_ms, end_ms) = (6, 13, 26_000, 60_000);
    let schedule: &[(u64, Action)] = &[
        (2_000, Action::Send(2)),
        (5_000, Action::Cut(0)),
        (9_000, Action::Send(3)),
        (16_000, Action::Restore(0)),
        (21_000, Action::Send(1)),
        (33_000, Action::Send(4)),
        (47_000, Action::Send(5)),
    ];
    let build = |shards: usize| {
        let (graph, ids) = ring(n);
        let cfg = InternetConfig {
            borders: BorderPlan::PerEdge,
            addressing: Addressing::Static,
            sessions: Some(chaos_session_timers()),
            seed,
            shards,
            ..Default::default()
        };
        let mut net = Internet::build(graph, &cfg);
        net.engine
            .faults_mut()
            .set_faultable(|m| matches!(m, Wire::Keepalive { .. } | Wire::Data { .. }));
        (net, ids)
    };
    let setup = |shards: usize| {
        let (mut net, ids) = build(shards);
        net.converge();
        let g = net.group_addr(ids[0]);
        for d in &ids {
            net.host_join(
                HostId {
                    domain: asn_of(*d),
                    host: 1,
                },
                g,
            );
        }
        net.converge();
        net.engine.faults_mut().set_default_model(FaultModel {
            loss: 0.10,
            dup: 0.05,
            jitter_ms: 30,
        });
        net.schedule_crash(
            ids[3],
            SimDuration::from_secs(12),
            SimDuration::from_secs(10),
        );
        let t0 = net.engine.now();
        (net, ids, g, t0)
    };

    // Uninterrupted reference at 1 shard.
    let (mut mono, ids, g, t0) = setup(1);
    drive(&mut mono, &ids, g, schedule, t0, 0, end_ms);
    let want = state_fingerprint(&mono);

    // Checkpoint at 2 and at 4 shards: the blobs must be equal, and
    // each must resume — here onto yet other shard counts — to the
    // reference fingerprint.
    let mut blobs = Vec::new();
    for (run_shards, resume_shards) in [(2usize, 4usize), (4, 3)] {
        let (mut net, ids1, g1, t1) = setup(run_shards);
        drive(&mut net, &ids1, g1, schedule, t1, 0, cp_ms);
        let bytes = net.checkpoint().expect("checkpoint mid-chaos");

        let (mut resumed, ids2) = build(resume_shards);
        resumed.resume_from(&bytes).expect("resume");
        drive(&mut resumed, &ids2, g1, schedule, t1, cp_ms, end_ms);
        assert_eq!(
            state_fingerprint(&resumed),
            want,
            "{run_shards}-shard checkpoint resumed at {resume_shards} shards diverged"
        );
        assert_eq!(
            format!("{:?}", mono.engine.faults().stats()),
            format!("{:?}", resumed.engine.faults().stats()),
            "fault counters diverged"
        );
        blobs.push(bytes);
    }
    assert_eq!(
        blobs[0], blobs[1],
        "checkpoint bytes must not depend on the writer's shard count"
    );
}

/// A shell with the wrong shape must be rejected up front.
#[test]
fn resume_rejects_mismatched_topology() {
    let (mut small, _) = build_net(4, 5);
    small.converge();
    let bytes = small.checkpoint().expect("checkpoint");
    let (mut big, _) = build_net(5, 5);
    assert!(
        big.resume_from(&bytes).is_err(),
        "resume onto a different topology must fail"
    );
}

// ---------------------------------------------------------------
// Property: resume equivalence on random topologies under random
// fault schedules, with the checkpoint taken at a random tick.
// ---------------------------------------------------------------

mod random_cases {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    struct Case {
        domains: usize,
        /// Chord endpoints (reduced mod `domains`, deduped at build).
        extras: Vec<(usize, usize)>,
        /// (edge index, start s, duration s) silent flaps.
        flaps: Vec<(usize, u64, u64)>,
        /// (victim index ≥ 1, start s, outage s) fail-stop crash.
        crash: Option<(usize, u64, u64)>,
        /// (domain index, send time s) data packets.
        sends: Vec<(usize, u64)>,
        lossy: bool,
        seed: u64,
        /// Checkpoint tick as a permille of the horizon.
        cp_permille: u64,
    }

    fn arb_case() -> impl Strategy<Value = Case> {
        (
            (
                4usize..=6,
                prop::collection::vec((0usize..6, 0usize..6), 0..=2),
                prop::collection::vec((0usize..8, 2u64..28, 4u64..=14), 1..=3),
                prop::option::of((1usize..6, 4u64..24, 6u64..=16)),
            ),
            (
                prop::collection::vec((0usize..6, 1u64..38), 1..=3),
                any::<bool>(),
                0u64..1_000,
                80u64..920,
            ),
        )
            .prop_map(
                |((domains, extras, flaps, crash), (sends, lossy, seed, cp_permille))| Case {
                    domains,
                    extras,
                    flaps,
                    crash,
                    sends,
                    lossy,
                    seed,
                    cp_permille,
                },
            )
    }

    /// Edge list (as domain indices) for the case's graph: the ring
    /// plus whatever chords survive dedup.
    fn case_edges(case: &Case) -> Vec<(usize, usize)> {
        let n = case.domains;
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for &(a, b) in &case.extras {
            let (a, b) = (a % n, b % n);
            let (lo, hi) = (a.min(b), a.max(b));
            let adjacent = hi - lo == 1 || (lo == 0 && hi == n - 1);
            if lo == hi || adjacent || edges.contains(&(lo, hi)) {
                continue;
            }
            edges.push((lo, hi));
        }
        edges
    }

    fn build_case_net(case: &Case) -> (Internet, Vec<DomainId>) {
        let n = case.domains;
        let mut graph = DomainGraph::new();
        let ids: Vec<DomainId> = (0..n).map(|i| graph.add_domain(format!("Q{i}"))).collect();
        for &(a, b) in &case_edges(case) {
            graph.add_peering(ids[a], ids[b]);
        }
        let cfg = InternetConfig {
            borders: BorderPlan::PerEdge,
            addressing: Addressing::Static,
            sessions: Some(chaos_session_timers()),
            seed: case.seed,
            ..Default::default()
        };
        let mut net = Internet::build(graph, &cfg);
        net.engine
            .faults_mut()
            .set_faultable(|m| matches!(m, Wire::Keepalive { .. } | Wire::Data { .. }));
        (net, ids)
    }

    /// The scripted external stimulus: flaps become cut/restore pairs,
    /// sends become data packets, all at absolute times.
    fn case_schedule(case: &Case, edges: &[(usize, usize)]) -> (Vec<(u64, usize, bool)>, u64) {
        let mut horizon = 40_000u64;
        let mut events = Vec::new(); // (ms, edge, up?)
        for &(e, at, dur) in &case.flaps {
            let e = e % edges.len();
            events.push((at * 1000, e, false));
            events.push(((at + dur) * 1000, e, true));
            horizon = horizon.max((at + dur) * 1000 + 8_000);
        }
        if let Some((_, at, down)) = case.crash {
            horizon = horizon.max((at + down) * 1000 + 8_000);
        }
        events.sort_by_key(|&(ms, e, up)| (ms, e, up));
        (events, horizon)
    }

    /// Replays [from_ms, to_ms) of the schedule. Cuts and restores
    /// are edge-index based; sends are interleaved by time.
    #[allow(clippy::too_many_arguments)]
    fn drive_window(
        net: &mut Internet,
        ids: &[DomainId],
        edges: &[(usize, usize)],
        g: McastAddr,
        case: &Case,
        events: &[(u64, usize, bool)],
        t0: SimTime,
        from_ms: u64,
        to_ms: u64,
    ) {
        let mut acts: Vec<(u64, u8, usize)> = events
            .iter()
            .map(|&(ms, e, up)| (ms, u8::from(up), e))
            .collect();
        for &(d, at) in &case.sends {
            acts.push((at * 1000, 2, d % ids.len()));
        }
        acts.sort();
        for (ms, kind, idx) in acts {
            if ms < from_ms || ms >= to_ms {
                continue;
            }
            net.engine.run_until(t0 + SimDuration::from_millis(ms));
            match kind {
                0 => {
                    let (a, b) = edges[idx];
                    net.cut_link(ids[a], ids[b]);
                }
                1 => {
                    let (a, b) = edges[idx];
                    net.restore_link(ids[a], ids[b]);
                }
                _ => {
                    let h = HostId {
                        domain: asn_of(ids[idx]),
                        host: 7,
                    };
                    net.send_data(h, g);
                }
            }
        }
        net.engine.run_until(t0 + SimDuration::from_millis(to_ms));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// For any topology, fault schedule, and checkpoint tick:
        /// checkpoint + resume onto a fresh shell ends at the same
        /// fingerprint, fault counters, and invariant verdicts as
        /// the uninterrupted run.
        #[test]
        fn resume_equivalence_holds_everywhere(case in arb_case()) {
            let edges = case_edges(&case);
            let (mut mono, ids) = build_case_net(&case);
            mono.converge();
            let g = mono.group_addr(ids[0]);
            for d in &ids {
                mono.host_join(HostId { domain: asn_of(*d), host: 1 }, g);
            }
            mono.converge();
            prop_assert!(check_quiescent(&mono).is_empty(), "never clean pre-fault");

            if case.lossy {
                mono.engine.faults_mut().set_default_model(FaultModel {
                    loss: 0.10,
                    dup: 0.05,
                    jitter_ms: 30,
                });
            }
            if let Some((v, at, down)) = case.crash {
                let v = ids[v % (case.domains - 1) + 1];
                mono.schedule_crash(
                    v,
                    SimDuration::from_secs(at),
                    SimDuration::from_secs(down),
                );
            }
            let t0 = mono.engine.now();
            let (events, horizon) = case_schedule(&case, &edges);
            let cp_ms = horizon * case.cp_permille / 1000;

            drive_window(&mut mono, &ids, &edges, g, &case, &events, t0, 0, cp_ms);
            let bytes = mono.checkpoint().expect("checkpoint");
            drive_window(&mut mono, &ids, &edges, g, &case, &events, t0, cp_ms, horizon);

            let (mut resumed, ids2) = build_case_net(&case);
            resumed.resume_from(&bytes).expect("resume");
            drive_window(&mut resumed, &ids2, &edges, g, &case, &events, t0, cp_ms, horizon);

            prop_assert_eq!(mono.engine.now(), resumed.engine.now());
            prop_assert_eq!(
                state_fingerprint(&mono),
                state_fingerprint(&resumed),
                "diverged (checkpoint at {}ms of {}ms)", cp_ms, horizon
            );
            prop_assert_eq!(
                format!("{:?}", mono.engine.faults().stats()),
                format!("{:?}", resumed.engine.faults().stats())
            );
            prop_assert_eq!(check_quiescent(&mono), check_quiescent(&resumed));
        }
    }
}
