//! MIGP independence, the strong version (§3: "allows each domain the
//! choice of which multicast routing protocol to run inside the
//! domain"): every domain in ONE internet runs a different MIGP, and
//! the architecture still delivers exactly once.

use masc_bgmp_core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig};
use migp::{DomainNet, MigpKind};
use topology::{DomainGraph, DomainId};

#[test]
fn mixed_migps_in_one_internet() {
    // Star of five domains around a hub, each leaf running a different
    // protocol.
    let mut g = DomainGraph::new();
    let hub = g.add_domain("hub");
    let leaves: Vec<DomainId> = (0..5)
        .map(|i| {
            let d = g.add_domain(format!("L{i}"));
            g.add_provider_customer(hub, d);
            d
        })
        .collect();

    let cfg = InternetConfig {
        migp: MigpKind::Dvmrp, // initial; swapped per domain below
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(g, &cfg);

    // Swap each leaf's MIGP for a different protocol, rebuilding over
    // an equivalent internal net (keeping border-router positions).
    let kinds = [
        MigpKind::Dvmrp,
        MigpKind::PimDm,
        MigpKind::PimSm,
        MigpKind::Cbt,
        MigpKind::Mospf,
    ];
    for (leaf, kind) in leaves.iter().zip(kinds) {
        let actor = net.domain_mut(*leaf);
        let borders = actor.routers.len();
        let fresh = if borders <= 1 {
            DomainNet::star(2, 1)
        } else {
            DomainNet::random(borders + 2, borders, 2, 7)
        };
        actor.migp = kind.build(fresh);
    }
    net.converge();

    // Group rooted in L0 (DVMRP); every other leaf joins.
    let root = leaves[0];
    let grp = net.group_addr(root);
    let members: Vec<HostId> = leaves
        .iter()
        .map(|d| HostId {
            domain: asn_of(*d),
            host: 1,
        })
        .collect();
    for m in &members {
        net.host_join(*m, grp);
    }
    net.converge();

    // A non-member host in the hub sends.
    let sender = HostId {
        domain: asn_of(DomainId(0)),
        host: 9,
    };
    let id = net.send_data(sender, grp);
    net.converge();
    let got = net.deliveries(id);
    assert_eq!(
        got.len(),
        members.len(),
        "all five differently-MIGP'd domains must receive: {got:?}"
    );
    assert_eq!(net.total_duplicates(), 0);

    // And each leaf can source data to the rest.
    for (i, leaf) in leaves.iter().enumerate() {
        let s = HostId {
            domain: asn_of(*leaf),
            host: 1,
        };
        let id = net.send_data(s, grp);
        net.converge();
        let got = net.deliveries(id);
        assert_eq!(got.len(), members.len() - 1, "sender {i} delivery: {got:?}");
        assert!(!got.contains(&s));
    }
    assert_eq!(net.total_duplicates(), 0);
}
