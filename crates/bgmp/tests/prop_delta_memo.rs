//! Differential property test for delta-based G-RIB memo
//! invalidation: a [`BgmpRouter`] whose memo is invalidated only for
//! the prefixes the RIB reports changed
//! ([`BgmpRouter::grib_changed_prefixes`] fed by
//! [`Rib::take_changed_groups`]) must make the same forwarding
//! decisions as one whose memo is wholesale-flushed on every RIB
//! touch ([`BgmpRouter::grib_changed`]).

use bgmp::{BgmpRouter, NextHop, RouteLookup, SourceId, Target};
use bgp::{Nlri, Rib, Route};
use mcast_addr::{McastAddr, Prefix};
use proptest::prelude::*;

/// A [`RouteLookup`] backed by a live G-RIB, mapping best routes to
/// next hops the way the host domain does (local origination ⇒ this
/// domain is the root; otherwise forward to the route's next hop).
struct RibLookup<'a>(&'a Rib);

impl RouteLookup for RibLookup<'_> {
    fn toward_group(&self, g: McastAddr) -> Option<NextHop> {
        self.0.lookup_group(g).map(|r| {
            if r.local {
                NextHop::Local
            } else {
                NextHop::ExternalPeer(r.next_hop)
            }
        })
    }
    fn toward_domain(&self, asn: bgp::Asn) -> Option<NextHop> {
        self.0.lookup_domain(asn).map(|r| {
            if r.local {
                NextHop::Local
            } else {
                NextHop::ExternalPeer(r.next_hop)
            }
        })
    }
}

/// Nested and sibling ranges so longest-prefix answers shift when an
/// inner route appears or disappears, plus disjoint ranges whose memo
/// entries must *survive* unrelated churn.
const PREFIXES: [&str; 6] = [
    "224.0.0.0/8",
    "224.0.0.0/16",
    "224.0.0.0/24",
    "224.1.0.0/16",
    "225.0.0.0/8",
    "239.255.0.0/16",
];

/// Probe addresses spread over the ranges above (and one covered by
/// nothing, exercising negative memo entries).
const PROBES: [u32; 7] = [
    0xE000_0005, // 224.0.0.5   — all three nested prefixes
    0xE000_0105, // 224.0.1.5   — /16 and /8
    0xE001_0005, // 224.1.0.5   — sibling /16 and /8
    0xE0FF_0001, // 224.255.0.1 — /8 only
    0xE100_0001, // 225.0.0.1   — separate /8
    0xEFFF_0001, // 239.255.0.1 — disjoint /16
    0xE800_0001, // 232.0.0.1   — uncovered
];

#[derive(Debug, Clone, Copy)]
enum Op {
    /// A peer advertises prefix `pi` with the given next hop and path
    /// length (path length varies so best-route selection flips).
    Update {
        peer: u32,
        pi: u8,
        hop: u32,
        plen: u8,
    },
    /// A peer withdraws prefix `pi`.
    Withdraw { peer: u32, pi: u8 },
    /// Session reset: everything from `peer` goes at once.
    FlushPeer { peer: u32 },
    /// A BGMP child joins group `probe` (creates (*,G) state on both
    /// routers, so later forwards take the entry path).
    Join { peer: u32, probe: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let np = PREFIXES.len() as u8;
    let npr = PROBES.len() as u8;
    // Updates listed twice: churn should be update-heavy so best
    // routes flip often (the vendored prop_oneof! is unweighted).
    prop_oneof![
        (1u32..4, 0..np, 10u32..14, 1u8..4).prop_map(|(peer, pi, hop, plen)| Op::Update {
            peer,
            pi,
            hop,
            plen
        }),
        (1u32..4, 0..np, 14u32..18, 1u8..4).prop_map(|(peer, pi, hop, plen)| Op::Update {
            peer,
            pi,
            hop,
            plen
        }),
        (1u32..4, 0..np).prop_map(|(peer, pi)| Op::Withdraw { peer, pi }),
        (1u32..4).prop_map(|peer| Op::FlushPeer { peer }),
        (50u32..53, 0..npr).prop_map(|(peer, probe)| Op::Join { peer, probe }),
    ]
}

fn apply_rib(rib: &mut Rib, op: Op) {
    match op {
        Op::Update {
            peer,
            pi,
            hop,
            plen,
        } => {
            let p: Prefix = PREFIXES[pi as usize].parse().unwrap();
            let path: Vec<u32> = (0..plen as u32).map(|i| 100 + peer + i).collect();
            rib.update_from(
                peer,
                Route {
                    nlri: Nlri::Group(p),
                    as_path: path.into(),
                    next_hop: hop,
                    local: false,
                    ebgp: true,
                },
            );
        }
        Op::Withdraw { peer, pi } => {
            let p: Prefix = PREFIXES[pi as usize].parse().unwrap();
            rib.withdraw_from(peer, Nlri::Group(p));
        }
        Op::FlushPeer { peer } => {
            rib.flush_peer(peer);
        }
        Op::Join { .. } => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Delta invalidation ≡ full invalidation, observed through every
    /// forwarding decision after every operation.
    #[test]
    fn delta_memo_matches_full_flush(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut rib_full = Rib::new();
        let mut rib_delta = Rib::new();
        let mut full = BgmpRouter::new(1);
        let mut delta = BgmpRouter::new(1);
        // Drain the (empty) change log so the delta side starts clean.
        rib_delta.take_changed_groups();
        let src = SourceId { domain: 9, host: 9 };

        for op in &ops {
            apply_rib(&mut rib_full, *op);
            apply_rib(&mut rib_delta, *op);

            // The two invalidation disciplines under test. In
            // production the memo is synced before any use, so the
            // join below comes after.
            full.grib_changed();
            delta.grib_changed_prefixes(&rib_delta.take_changed_groups());

            if let Op::Join { peer, probe } = *op {
                let g = McastAddr(PROBES[probe as usize]);
                full.join(Target::Peer(peer), g, &RibLookup(&rib_full));
                delta.join(Target::Peer(peer), g, &RibLookup(&rib_delta));
            }

            // Every probe must forward identically — including the
            // stale-looking memo entries delta left in place.
            for (i, raw) in PROBES.iter().enumerate() {
                let g = McastAddr(*raw);
                let df = full.forward(None, src, g, &RibLookup(&rib_full));
                let dd = delta.forward(None, src, g, &RibLookup(&rib_delta));
                prop_assert_eq!(df, dd, "probe {} diverged after {:?}", i, op);
            }
        }
    }
}
