//! Property tests for BGMP forwarding state: arbitrary join/prune
//! interleavings preserve the entry invariants, and the bidirectional
//! forwarding rule never echoes or duplicates.

use bgmp::{BgmpRouter, ForwardDecision, NextHop, RouteLookup, SourceId, Target};
use mcast_addr::McastAddr;
use proptest::prelude::*;

/// All groups route toward peer 100 (an arbitrary upstream).
struct Upstream;
impl RouteLookup for Upstream {
    fn toward_group(&self, _g: McastAddr) -> Option<NextHop> {
        Some(NextHop::ExternalPeer(100))
    }
    fn toward_domain(&self, _asn: bgp::Asn) -> Option<NextHop> {
        Some(NextHop::ExternalPeer(100))
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Join { peer: u32, g: u8 },
    Prune { peer: u32, g: u8 },
    MigpJoin { g: u8 },
    MigpPrune { g: u8 },
    SourceJoin { peer: u32, g: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..6, 0u8..4).prop_map(|(peer, g)| Op::Join { peer, g }),
        (1u32..6, 0u8..4).prop_map(|(peer, g)| Op::Prune { peer, g }),
        (0u8..4).prop_map(|g| Op::MigpJoin { g }),
        (0u8..4).prop_map(|g| Op::MigpPrune { g }),
        (1u32..6, 0u8..4).prop_map(|(peer, g)| Op::SourceJoin { peer, g }),
    ]
}

fn group(g: u8) -> McastAddr {
    McastAddr(0xE000_0100 | g as u32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn entry_invariants_under_churn(ops in prop::collection::vec(arb_op(), 1..80)) {
        let mut r = BgmpRouter::new(1);
        // Model: per group, the set of live children.
        let mut model: std::collections::BTreeMap<u8, std::collections::BTreeSet<Target>> =
            Default::default();
        let src = SourceId { domain: 9, host: 9 };

        for op in &ops {
            match *op {
                Op::Join { peer, g } => {
                    r.join(Target::Peer(peer), group(g), &Upstream);
                    model.entry(g).or_default().insert(Target::Peer(peer));
                }
                Op::Prune { peer, g } => {
                    r.prune(Target::Peer(peer), group(g));
                    if let Some(s) = model.get_mut(&g) {
                        s.remove(&Target::Peer(peer));
                        if s.is_empty() {
                            model.remove(&g);
                        }
                    }
                }
                Op::MigpJoin { g } => {
                    r.join(Target::Migp, group(g), &Upstream);
                    model.entry(g).or_default().insert(Target::Migp);
                }
                Op::MigpPrune { g } => {
                    r.prune(Target::Migp, group(g));
                    if let Some(s) = model.get_mut(&g) {
                        s.remove(&Target::Migp);
                        if s.is_empty() {
                            model.remove(&g);
                        }
                    }
                }
                Op::SourceJoin { peer, g } => {
                    r.source_join(Target::Peer(peer), src, group(g), &Upstream);
                }
            }

            // Invariants after every op:
            for gg in 0u8..4 {
                let entry = r.table().star_exact(group(gg));
                match model.get(&gg) {
                    Some(children) => {
                        let e = entry.expect("entry must exist while children live");
                        prop_assert_eq!(&e.children, children);
                        // Parent points upstream (never at a child-only peer
                        // unless that peer is the upstream itself).
                        prop_assert_eq!(e.parent, Some(Target::Peer(100)));
                    }
                    None => {
                        prop_assert!(entry.is_none(), "entry must die with its children");
                    }
                }
            }
        }
    }

    /// The forwarding rule: never echoes to the arrival target, never
    /// produces duplicates, and from the parent reaches every child.
    #[test]
    fn forwarding_rule_properties(
        ops in prop::collection::vec(arb_op(), 1..40),
        from_peer in prop::option::of(1u32..6),
    ) {
        let mut r = BgmpRouter::new(1);
        for op in &ops {
            match *op {
                Op::Join { peer, g } => { r.join(Target::Peer(peer), group(g), &Upstream); }
                Op::MigpJoin { g } => { r.join(Target::Migp, group(g), &Upstream); }
                _ => {}
            }
        }
        let src = SourceId { domain: 2, host: 0 };
        let from = from_peer.map(Target::Peer);
        for g in 0u8..4 {
            match r.forward(from, src, group(g), &Upstream) {
                ForwardDecision::Targets(targets) => {
                    // No echo.
                    if let Some(f) = from {
                        prop_assert!(!targets.contains(&f), "echoed to arrival target");
                    }
                    // No duplicates.
                    let set: std::collections::BTreeSet<_> = targets.iter().collect();
                    prop_assert_eq!(set.len(), targets.len(), "duplicate targets");
                    // From the upstream parent, every child is served.
                    if from == Some(Target::Peer(100)) {
                        let e = r.table().star_exact(group(g)).unwrap();
                        for c in &e.children {
                            prop_assert!(targets.contains(c), "child {c:?} missed");
                        }
                    }
                }
                ForwardDecision::TowardRoot(NextHop::ExternalPeer(p)) => {
                    prop_assert_eq!(p, 100);
                    prop_assert!(r.table().star_exact(group(g)).is_none());
                }
                other => prop_assert!(false, "unexpected decision {other:?}"),
            }
        }
    }

    /// Prefix-aggregated tables answer lookups identically to the
    /// exact table they were built from.
    #[test]
    fn aggregation_preserves_lookup(groups in prop::collection::vec(0u8..16, 1..16)) {
        let mut r = BgmpRouter::new(1);
        for g in &groups {
            r.join(Target::Peer(2), group(*g), &Upstream);
        }
        // Snapshot lookups before aggregation.
        let before: Vec<Option<(Option<Target>, usize)>> = (0u8..16)
            .map(|g| {
                r.table()
                    .star_lookup(group(g))
                    .map(|(_, e)| (e.parent, e.children.len()))
            })
            .collect();
        r.table_mut().aggregate_star();
        for g in 0u8..16 {
            let after = r
                .table()
                .star_lookup(group(g))
                .map(|(_, e)| (e.parent, e.children.len()));
            // Aggregation may widen coverage (an aggregated prefix can
            // cover groups that had no exact entry), but where an exact
            // entry existed the answer must be identical.
            if before[g as usize].is_some() {
                prop_assert_eq!(after, before[g as usize], "lookup changed for group {}", g);
            }
        }
    }
}
