//! BGMP forwarding state: (*,G) entries with parent/child targets,
//! source-specific (S,G) entries, and prefix-aggregated entries.
//!
//! §5 of the paper: a multicast-group forwarding entry consists of "a
//! parent target and a list of child targets"; a target is either a
//! BGMP peer or the MIGP component of the border router. Data received
//! from any target is forwarded to all other targets (bidirectional
//! forwarding). §7 adds (*,G-prefix) aggregation: entries may be keyed
//! by a group *prefix* wherever the target lists coincide — this table
//! is keyed by [`Prefix`], with exact groups stored as `/32`, and
//! looked up longest-prefix-first.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use bgp::{Asn, RouterId};
use mcast_addr::{McastAddr, Prefix};
use serde::{Deserialize, Serialize};

use crate::slab::Slab;

/// A forwarding target: a BGMP peer router or the local MIGP
/// component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Target {
    /// Another border router (internal or external BGMP peer).
    Peer(RouterId),
    /// The border router's own MIGP component (the domain's interior).
    Migp,
}

/// A multicast source: a host within a domain. Routing toward a source
/// uses the M-RIB route toward its domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId {
    /// The source's domain.
    pub domain: Asn,
    /// Host identity within the domain.
    pub host: u32,
}

/// A shared-tree forwarding entry: (*,G) or (*,G-prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupEntry {
    /// The target toward the group's root domain (`None` only in the
    /// root domain itself, where the MIGP component is stored as the
    /// parent — see §5.2 "B1 creates a (*,G) entry with its MIGP
    /// component as the parent target").
    pub parent: Option<Target>,
    /// When the parent is the MIGP component because the best exit
    /// router is an internal BGMP peer (footnote 9), the exit router
    /// the join travelled through — needed to tear the leg down.
    pub via_exit: Option<RouterId>,
    /// Targets that joined through us.
    pub children: BTreeSet<Target>,
}

impl GroupEntry {
    /// All targets (parent and children), deduplicated — in the root
    /// domain the MIGP component can be both parent and child (§5.2).
    pub fn targets(&self) -> impl Iterator<Item = Target> + '_ {
        self.parent
            .into_iter()
            .filter(|p| !self.children.contains(p))
            .chain(self.children.iter().copied())
    }

    /// Bidirectional forwarding rule: every target except the one the
    /// packet came from.
    pub fn forward_targets(&self, from: Option<Target>) -> Vec<Target> {
        self.targets().filter(|t| Some(*t) != from).collect()
    }
}

/// A source-specific entry, (S,G).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgEntry {
    /// Toward the source (or the MIGP component in the source's own
    /// domain). `None` when the entry was created on the shared tree
    /// by copying a (*,G) entry (§5.3: the (*,G) parent keeps playing
    /// that role).
    pub parent: Option<Target>,
    /// Exit router of an internal parent leg (as in
    /// [`GroupEntry::via_exit`]).
    pub via_exit: Option<RouterId>,
    /// Targets receiving S's data through us.
    pub children: BTreeSet<Target>,
}

impl SgEntry {
    /// All targets, deduplicated.
    pub fn targets(&self) -> impl Iterator<Item = Target> + '_ {
        self.parent
            .into_iter()
            .filter(|p| !self.children.contains(p))
            .chain(self.children.iter().copied())
    }

    /// Forwarding rule for packets from S.
    pub fn forward_targets(&self, from: Option<Target>) -> Vec<Target> {
        self.targets().filter(|t| Some(*t) != from).collect()
    }
}

/// The BGMP forwarding table of one border router.
///
/// Entries live in slab arenas ([`Slab`]); the ordered maps hold slab
/// keys. Join/prune churn recycles entry slots, and the maps
/// rebalance over 4-byte values instead of whole entries. Snapshot
/// encoding is unchanged: sorted `(key, entry)` pairs, byte-identical
/// to the former inline-entry layout.
#[derive(Debug, Clone, Default)]
pub struct ForwardingTable {
    star: BTreeMap<Prefix, u32>,
    sg: BTreeMap<(SourceId, McastAddr), u32>,
    star_slab: Slab<GroupEntry>,
    sg_slab: Slab<SgEntry>,
}

impl ForwardingTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact-group key for `g`.
    fn key(g: McastAddr) -> Prefix {
        Prefix::containing(g, 32).expect("/32 always valid")
    }

    /// Longest-prefix-match lookup of the shared-tree entry for `g`.
    pub fn star_lookup(&self, g: McastAddr) -> Option<(&Prefix, &GroupEntry)> {
        self.star
            .iter()
            .filter(|(p, _)| p.contains(g))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, i)| (p, self.star_slab.get(*i)))
    }

    /// The exact (*,G) entry for `g`, if present.
    pub fn star_exact(&self, g: McastAddr) -> Option<&GroupEntry> {
        let i = *self.star.get(&Self::key(g))?;
        Some(self.star_slab.get(i))
    }

    /// Mutable exact (*,G) entry.
    pub fn star_exact_mut(&mut self, g: McastAddr) -> Option<&mut GroupEntry> {
        let i = *self.star.get(&Self::key(g))?;
        Some(self.star_slab.get_mut(i))
    }

    /// Inserts/replaces the exact (*,G) entry.
    pub fn star_insert(&mut self, g: McastAddr, e: GroupEntry) {
        Self::map_insert(&mut self.star, &mut self.star_slab, Self::key(g), e);
    }

    /// Inserts a prefix-aggregated (*,G-prefix) entry (§7).
    pub fn star_insert_prefix(&mut self, p: Prefix, e: GroupEntry) {
        Self::map_insert(&mut self.star, &mut self.star_slab, p, e);
    }

    /// Removes the exact (*,G) entry, returning it.
    pub fn star_remove(&mut self, g: McastAddr) -> Option<GroupEntry> {
        let i = self.star.remove(&Self::key(g))?;
        Some(self.star_slab.remove(i))
    }

    /// All (*,G)/(*,G-prefix) entries.
    pub fn star_entries(&self) -> impl Iterator<Item = (&Prefix, &GroupEntry)> {
        self.star.iter().map(|(p, i)| (p, self.star_slab.get(*i)))
    }

    /// Number of shared-tree entries (state-scaling metric, §7).
    pub fn star_len(&self) -> usize {
        self.star.len()
    }

    /// The (S,G) entry.
    pub fn sg(&self, s: SourceId, g: McastAddr) -> Option<&SgEntry> {
        let i = *self.sg.get(&(s, g))?;
        Some(self.sg_slab.get(i))
    }

    /// Mutable (S,G) entry.
    pub fn sg_mut(&mut self, s: SourceId, g: McastAddr) -> Option<&mut SgEntry> {
        let i = *self.sg.get(&(s, g))?;
        Some(self.sg_slab.get_mut(i))
    }

    /// Inserts/replaces an (S,G) entry.
    pub fn sg_insert(&mut self, s: SourceId, g: McastAddr, e: SgEntry) {
        Self::map_insert(&mut self.sg, &mut self.sg_slab, (s, g), e);
    }

    /// Removes an (S,G) entry.
    pub fn sg_remove(&mut self, s: SourceId, g: McastAddr) -> Option<SgEntry> {
        let i = self.sg.remove(&(s, g))?;
        Some(self.sg_slab.remove(i))
    }

    /// All (S,G) entries.
    pub fn sg_entries(&self) -> impl Iterator<Item = (&(SourceId, McastAddr), &SgEntry)> {
        self.sg.iter().map(|(k, i)| (k, self.sg_slab.get(*i)))
    }

    /// Insert-or-replace through an index map into its slab.
    fn map_insert<K: Ord, T>(map: &mut BTreeMap<K, u32>, slab: &mut Slab<T>, k: K, e: T) {
        match map.entry(k) {
            std::collections::btree_map::Entry::Occupied(o) => *slab.get_mut(*o.get()) = e,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(slab.insert(e));
            }
        }
    }

    /// Collapses runs of exact (*,G) entries with identical targets
    /// into (*,G-prefix) entries where a full prefix's groups all
    /// share the same target list (§7's state-scaling provision).
    /// Returns the number of entries saved.
    pub fn aggregate_star(&mut self) -> usize {
        let before = self.star.len();
        loop {
            let mut merged = false;
            let keys: Vec<Prefix> = self.star.keys().copied().collect();
            for k in keys {
                let Some(buddy) = k.buddy() else { continue };
                let (Some(&ia), Some(&ib)) = (self.star.get(&k), self.star.get(&buddy)) else {
                    continue;
                };
                if self.star_slab.get(ia) == self.star_slab.get(ib) {
                    let parent = k.parent().expect("buddy implies parent");
                    self.star.remove(&k);
                    self.star.remove(&buddy);
                    let entry = self.star_slab.remove(ia);
                    self.star_slab.remove(ib);
                    Self::map_insert(&mut self.star, &mut self.star_slab, parent, entry);
                    merged = true;
                    break;
                }
            }
            if !merged {
                break;
            }
        }
        before - self.star.len()
    }
}

impl snapshot::Snapshot for Target {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            Target::Peer(r) => {
                enc.u8(0);
                enc.u32(*r);
            }
            Target::Migp => enc.u8(1),
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(Target::Peer(dec.u32()?)),
            1 => Ok(Target::Migp),
            _ => Err(snapshot::SnapError::Invalid("Target tag")),
        }
    }
}

impl snapshot::Snapshot for SourceId {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u32(self.domain);
        enc.u32(self.host);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(SourceId {
            domain: dec.u32()?,
            host: dec.u32()?,
        })
    }
}

impl snapshot::Snapshot for GroupEntry {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.parent.encode(enc);
        self.via_exit.encode(enc);
        self.children.encode(enc);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let parent = snapshot::Snapshot::decode(dec)?;
        let via_exit: Option<RouterId> = snapshot::Snapshot::decode(dec)?;
        Ok(GroupEntry {
            parent,
            via_exit,
            children: snapshot::Snapshot::decode(dec)?,
        })
    }
}

impl snapshot::Snapshot for SgEntry {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.parent.encode(enc);
        self.via_exit.encode(enc);
        self.children.encode(enc);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let parent = snapshot::Snapshot::decode(dec)?;
        let via_exit: Option<RouterId> = snapshot::Snapshot::decode(dec)?;
        Ok(SgEntry {
            parent,
            via_exit,
            children: snapshot::Snapshot::decode(dec)?,
        })
    }
}

impl snapshot::Snapshot for ForwardingTable {
    /// Encodes sorted `(key, entry)` pairs exactly as the former
    /// `BTreeMap<_, Entry>` layout did; slab keys are never on the
    /// wire.
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.seq(self.star.len());
        for (p, i) in &self.star {
            p.encode(enc);
            self.star_slab.get(*i).encode(enc);
        }
        enc.seq(self.sg.len());
        for (k, i) in &self.sg {
            k.encode(enc);
            self.sg_slab.get(*i).encode(enc);
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let mut t = ForwardingTable::new();
        for _ in 0..dec.seq()? {
            let p = Prefix::decode(dec)?;
            let e = GroupEntry::decode(dec)?;
            Self::map_insert(&mut t.star, &mut t.star_slab, p, e);
        }
        for _ in 0..dec.seq()? {
            let k = <(SourceId, McastAddr)>::decode(dec)?;
            let e = SgEntry::decode(dec)?;
            Self::map_insert(&mut t.sg, &mut t.sg_slab, k, e);
        }
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(x: u32) -> McastAddr {
        McastAddr(0xE000_0000 | x)
    }

    fn entry(parent: Option<Target>, children: &[Target]) -> GroupEntry {
        GroupEntry {
            parent,
            via_exit: None,
            children: children.iter().copied().collect(),
        }
    }

    #[test]
    fn bidirectional_forwarding_excludes_arrival() {
        let e = entry(Some(Target::Peer(1)), &[Target::Peer(2), Target::Migp]);
        let fwd = e.forward_targets(Some(Target::Peer(2)));
        assert_eq!(fwd, vec![Target::Peer(1), Target::Migp]);
        // From the parent: down to all children.
        let fwd = e.forward_targets(Some(Target::Peer(1)));
        assert_eq!(fwd, vec![Target::Peer(2), Target::Migp]);
        // Locally injected (no arrival target): everywhere.
        assert_eq!(e.forward_targets(None).len(), 3);
    }

    #[test]
    fn star_lookup_prefers_exact_over_prefix() {
        let mut t = ForwardingTable::new();
        t.star_insert_prefix(
            "224.0.1.0/24".parse().unwrap(),
            entry(Some(Target::Peer(9)), &[]),
        );
        t.star_insert(g(0x0101), entry(Some(Target::Peer(1)), &[Target::Migp]));
        let (p, e) = t.star_lookup(g(0x0101)).unwrap();
        assert_eq!(p.len(), 32);
        assert_eq!(e.parent, Some(Target::Peer(1)));
        // Another group in the /24 hits the aggregate.
        let (p, e) = t.star_lookup(g(0x0102)).unwrap();
        assert_eq!(p.len(), 24);
        assert_eq!(e.parent, Some(Target::Peer(9)));
        // Outside both: nothing.
        assert!(t.star_lookup(g(0x0201)).is_none());
    }

    #[test]
    fn aggregation_merges_identical_buddies() {
        let mut t = ForwardingTable::new();
        let e = entry(Some(Target::Peer(1)), &[Target::Migp]);
        // Four consecutive groups with identical targets.
        for x in 0..4 {
            t.star_insert(g(0x0100 + x), e.clone());
        }
        // And one different entry that must survive.
        t.star_insert(g(0x0104), entry(Some(Target::Peer(2)), &[]));
        let saved = t.aggregate_star();
        assert_eq!(saved, 3);
        assert_eq!(t.star_len(), 2);
        // Lookups still resolve correctly.
        assert_eq!(
            t.star_lookup(g(0x0102)).unwrap().1.parent,
            Some(Target::Peer(1))
        );
        assert_eq!(
            t.star_lookup(g(0x0104)).unwrap().1.parent,
            Some(Target::Peer(2))
        );
    }

    #[test]
    fn migp_as_parent_and_child_forwards_once() {
        // Root-domain case (§5.2): B1 has the MIGP component as parent
        // *and* (after an internal transit join) as child. A packet
        // from a peer must be injected into the domain exactly once.
        let e = entry(Some(Target::Migp), &[Target::Migp, Target::Peer(3)]);
        let fwd = e.forward_targets(Some(Target::Peer(3)));
        assert_eq!(fwd, vec![Target::Migp]);
    }

    #[test]
    fn sg_entries_roundtrip() {
        let mut t = ForwardingTable::new();
        let s = SourceId { domain: 4, host: 7 };
        t.sg_insert(
            s,
            g(1),
            SgEntry {
                parent: Some(Target::Peer(3)),
                via_exit: None,
                children: [Target::Migp].into(),
            },
        );
        assert!(t.sg(s, g(1)).is_some());
        assert!(t.sg(s, g(2)).is_none());
        let e = t.sg_remove(s, g(1)).unwrap();
        assert_eq!(e.parent, Some(Target::Peer(3)));
        assert_eq!(t.sg_entries().count(), 0);
    }
}
