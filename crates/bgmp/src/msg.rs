//! BGMP protocol messages and engine actions.

use bgp::RouterId;
use mcast_addr::McastAddr;
use serde::{Deserialize, Serialize};

use crate::entry::SourceId;

/// A BGMP message between peering border routers (carried over their
/// persistent TCP session, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BgmpMsg {
    /// Join the shared tree for the group (sets up (*,G) state toward
    /// the root domain).
    Join(McastAddr),
    /// Leave the shared tree.
    Prune(McastAddr),
    /// Join a source-specific branch toward the source (§5.3).
    SourceJoin(SourceId, McastAddr),
    /// Prune a source's data from this direction.
    SourcePrune(SourceId, McastAddr),
}

impl snapshot::Snapshot for BgmpMsg {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            BgmpMsg::Join(g) => {
                enc.u8(0);
                g.encode(enc);
            }
            BgmpMsg::Prune(g) => {
                enc.u8(1);
                g.encode(enc);
            }
            BgmpMsg::SourceJoin(s, g) => {
                enc.u8(2);
                s.encode(enc);
                g.encode(enc);
            }
            BgmpMsg::SourcePrune(s, g) => {
                enc.u8(3);
                s.encode(enc);
                g.encode(enc);
            }
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(BgmpMsg::Join(McastAddr::decode(dec)?)),
            1 => Ok(BgmpMsg::Prune(McastAddr::decode(dec)?)),
            2 => Ok(BgmpMsg::SourceJoin(
                SourceId::decode(dec)?,
                McastAddr::decode(dec)?,
            )),
            3 => Ok(BgmpMsg::SourcePrune(
                SourceId::decode(dec)?,
                McastAddr::decode(dec)?,
            )),
            _ => Err(snapshot::SnapError::Invalid("BgmpMsg tag")),
        }
    }
}

/// How a group join/prune resolves toward its root domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(wire-variant-coverage) — host-interface lookup result, computed per call; never serialized
pub enum NextHop {
    /// The root domain is this router's own domain (we originated the
    /// covering group route).
    Local,
    /// An external BGMP peer is the next hop.
    ExternalPeer(RouterId),
    /// The best exit router is another border router of our own
    /// domain; joins travel through the MIGP to it (paper footnote 9).
    Internal {
        /// The best exit border router.
        exit: RouterId,
    },
}

/// Route lookups BGMP needs, provided by the host (backed by the BGP
/// speaker's G-RIB and M-RIB).
pub trait RouteLookup {
    /// Next hop toward the root domain of `g` (G-RIB longest-prefix
    /// match, §4.2).
    fn toward_group(&self, g: McastAddr) -> Option<NextHop>;

    /// Next hop toward a domain (M-RIB; used for source-specific
    /// joins, §5.3).
    fn toward_domain(&self, asn: bgp::Asn) -> Option<NextHop>;
}

/// Effects requested by the BGMP engine, executed by the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// lint:allow(wire-variant-coverage) — effect requests consumed synchronously by the host; never serialized
pub enum BgmpAction {
    /// Transmit a message to a BGMP peer (internal or external).
    SendToPeer {
        /// Destination border router.
        to: RouterId,
        /// Payload.
        msg: BgmpMsg,
    },
    /// Subscribe this border router to the group inside the domain:
    /// the MIGP component becomes a data source/sink for the group
    /// (border_subscribe + joining as a member where the MIGP needs
    /// it).
    MigpSubscribe(McastAddr),
    /// Drop the subscription.
    MigpUnsubscribe(McastAddr),
    /// Ask the MIGP to carry the group between this router and the
    /// best exit router `exit`, and notify `exit`'s BGMP component of
    /// the join (paper: "A2 transmits the join request to its MIGP
    /// component because A3 is an internal BGMP peer").
    JoinViaMigp {
        /// The best exit border router for the group.
        exit: RouterId,
        /// The group.
        group: McastAddr,
    },
    /// Tear down the internal leg.
    PruneViaMigp {
        /// The exit router previously joined through.
        exit: RouterId,
        /// The group.
        group: McastAddr,
    },
    /// Source-specific analogue of [`BgmpAction::JoinViaMigp`]: carry
    /// (S,G) data between this router and the best exit toward the
    /// source, and continue the source-specific join there (§5.3).
    SourceJoinViaMigp {
        /// Best exit router toward the source's domain.
        exit: RouterId,
        /// The source.
        source: crate::entry::SourceId,
        /// The group.
        group: McastAddr,
    },
    /// Tear down a source-specific internal leg.
    SourcePruneViaMigp {
        /// The exit router previously joined through.
        exit: RouterId,
        /// The source.
        source: crate::entry::SourceId,
        /// The group.
        group: McastAddr,
    },
}
