//! The sans-io BGMP engine for one border router.
//!
//! Implements §5 of the paper: shared-tree construction by propagating
//! joins toward the group's root domain (found by G-RIB lookup),
//! bidirectional data forwarding over (*,G) entries, teardown by
//! prunes, and source-specific branches ((S,G) state that stops at the
//! shared tree, §5.3).
//!
//! Like the BGP speaker, this is a pure state machine: events in,
//! actions out, with route lookups supplied by the host through
//! [`RouteLookup`].

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use bgp::RouterId;
use mcast_addr::{McastAddr, Prefix};

use crate::entry::{ForwardingTable, GroupEntry, SgEntry, SourceId, Target};
use crate::msg::{BgmpAction, BgmpMsg, NextHop, RouteLookup};

/// Counters for analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct BgmpStats {
    /// Shared-tree joins processed.
    pub joins: u64,
    /// Prunes processed.
    pub prunes: u64,
    /// Source-specific joins processed.
    pub source_joins: u64,
    /// Source-specific prunes processed.
    pub source_prunes: u64,
}

/// Cap on memoized per-group resolutions; past this the memo is
/// cleared wholesale rather than evicted entry by entry.
const LOOKUP_MEMO_CAP: usize = 4096;

/// The BGMP component of one border router.
#[derive(Debug, Default)]
pub struct BgmpRouter {
    router: RouterId, // lint:allow(snapshot-field-coverage) — identity; stays with the rebuilt instance across restore
    table: ForwardingTable,
    /// Counters.
    pub stats: BgmpStats,
    /// Data-plane fast path: per-group G-RIB resolution (group → next
    /// hop toward its root domain, `None` memoizing "no route" too).
    /// Interior-mutable because [`BgmpRouter::forward`] takes `&self`;
    /// flushed by [`BgmpRouter::grib_changed`] and on peer loss so a
    /// stale hop is never served after routes move.
    // lint:allow(snapshot-field-coverage) — derived memo; restore flushes it via grib_changed()
    lookup_memo: RefCell<BTreeMap<McastAddr, Option<NextHop>>>,
}

/// What to do with a data packet, as computed by
/// [`BgmpRouter::forward`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardDecision {
    /// Forward to these targets (bidirectional rule applied).
    Targets(Vec<Target>),
    /// No state: forward toward the group's root domain (§5: "the
    /// border router simply forwards the data packets towards the root
    /// domain").
    TowardRoot(NextHop),
    /// No state and no route: drop.
    Drop,
}

impl BgmpRouter {
    /// Creates the BGMP component for `router`.
    pub fn new(router: RouterId) -> Self {
        BgmpRouter {
            router,
            table: ForwardingTable::new(),
            stats: BgmpStats::default(),
            lookup_memo: RefCell::new(BTreeMap::new()),
        }
    }

    /// The host's G-RIB changed (update, withdraw, session flush…):
    /// drop every memoized per-group resolution so the next
    /// [`BgmpRouter::forward`] re-resolves against the new routes.
    pub fn grib_changed(&mut self) {
        self.lookup_memo.get_mut().clear();
    }

    /// Delta form of [`BgmpRouter::grib_changed`]: the host's G-RIB
    /// selection changed only for these prefixes, so only memoized
    /// resolutions for groups *covered* by one of them can be stale
    /// (an LPM answer moves only when a covering prefix moves —
    /// including memoized "no route" answers that a newly selected
    /// prefix now covers). Everything else stays hot.
    pub fn grib_changed_prefixes(&mut self, prefixes: &[Prefix]) {
        let memo = self.lookup_memo.get_mut();
        if memo.is_empty() {
            return;
        }
        for p in prefixes {
            if memo.len() <= 8 {
                memo.retain(|g, _| !p.contains(*g));
            } else {
                let stale: Vec<McastAddr> =
                    memo.range(p.base()..=p.last()).map(|(g, _)| *g).collect();
                for g in stale {
                    memo.remove(&g);
                }
            }
        }
    }

    /// This router's id.
    pub fn router(&self) -> RouterId {
        self.router
    }

    /// Read access to the forwarding table.
    pub fn table(&self) -> &ForwardingTable {
        &self.table
    }

    /// Mutable access (used by the aggregation ablation).
    pub fn table_mut(&mut self) -> &mut ForwardingTable {
        &mut self.table
    }

    // ------------------------------------------------------------------
    // Shared tree
    // ------------------------------------------------------------------

    /// A join for `g` arrived from `child` (a BGMP peer, or the MIGP
    /// component when the domain gained its first member or the MIGP
    /// relays an internal transit join).
    pub fn join(
        &mut self,
        child: Target,
        g: McastAddr,
        lookup: &impl RouteLookup,
    ) -> Vec<BgmpAction> {
        self.stats.joins += 1;
        let mut actions = Vec::new();
        if let Some(e) = self.table.star_exact_mut(g) {
            e.children.insert(child);
            return actions; // already on the tree
        }
        // Create the entry: parent is the next hop toward the root
        // domain per the G-RIB (§5.2).
        let mut via_exit = None;
        let parent = match lookup.toward_group(g) {
            Some(NextHop::ExternalPeer(p)) => {
                actions.push(BgmpAction::SendToPeer {
                    to: p,
                    msg: BgmpMsg::Join(g),
                });
                Some(Target::Peer(p))
            }
            Some(NextHop::Internal { exit }) => {
                // Join travels through the MIGP to the best exit
                // router (footnote 9: the parent target is the MIGP
                // component of the border router).
                via_exit = Some(exit);
                actions.push(BgmpAction::JoinViaMigp { exit, group: g });
                Some(Target::Migp)
            }
            Some(NextHop::Local) => {
                // We are in the root domain: the MIGP component is the
                // parent target and we join the group inside the
                // domain (§5.2).
                actions.push(BgmpAction::MigpSubscribe(g));
                Some(Target::Migp)
            }
            None => None, // no route; tree dangles until BGP converges
        };
        let mut children = BTreeSet::new();
        children.insert(child);
        // The MIGP child target also needs an internal subscription so
        // transit data reaches us.
        if child == Target::Migp && parent != Some(Target::Migp) {
            actions.push(BgmpAction::MigpSubscribe(g));
        }
        self.table.star_insert(
            g,
            GroupEntry {
                parent,
                via_exit,
                children,
            },
        );
        actions
    }

    /// A prune for `g` arrived from `child`.
    pub fn prune(&mut self, child: Target, g: McastAddr) -> Vec<BgmpAction> {
        self.stats.prunes += 1;
        let mut actions = Vec::new();
        let Some(e) = self.table.star_exact_mut(g) else {
            return actions;
        };
        e.children.remove(&child);
        if child == Target::Migp {
            actions.push(BgmpAction::MigpUnsubscribe(g));
        }
        if e.children.is_empty() {
            // Tear down toward the root (§5.2: "when the child target
            // list becomes empty, the BGMP router removes the (*,G)
            // entry and sends a prune message upstream").
            let parent = e.parent;
            let via_exit = e.via_exit;
            self.table.star_remove(g);
            match parent {
                Some(Target::Peer(p)) => {
                    actions.push(BgmpAction::SendToPeer {
                        to: p,
                        msg: BgmpMsg::Prune(g),
                    });
                }
                Some(Target::Migp) => {
                    actions.push(BgmpAction::MigpUnsubscribe(g));
                    if let Some(exit) = via_exit {
                        // Tear down the internal transit leg toward the
                        // best exit router we joined through.
                        actions.push(BgmpAction::PruneViaMigp { exit, group: g });
                    }
                }
                None => {}
            }
            // Dangling (S,G) state for this group dies with the tree.
            let stale: Vec<(SourceId, McastAddr)> = self
                .table
                .sg_entries()
                .filter(|((_, gg), _)| *gg == g)
                .map(|(k, _)| *k)
                .collect();
            for (s, gg) in stale {
                self.table.sg_remove(s, gg);
            }
        }
        actions
    }

    /// The peering session to `peer` was lost: entries using it as a
    /// child lose that child (as if pruned); entries using it as the
    /// parent re-join toward the root along the current best route
    /// (the G-RIB has already failed over when this is called).
    pub fn peer_down(&mut self, peer: RouterId, lookup: &impl RouteLookup) -> Vec<BgmpAction> {
        // Routes through the dead peer are gone; memoized hops through
        // it must not survive.
        self.lookup_memo.get_mut().clear();
        let mut actions = Vec::new();
        let gone = Target::Peer(peer);
        // Source-specific state through the dead peer simply drops;
        // branches rebuild on demand (encapsulation restarts them).
        let stale_sg: Vec<(SourceId, McastAddr)> = self
            .table
            .sg_entries()
            .filter(|(_, e)| e.parent == Some(gone) || e.children.contains(&gone))
            .map(|(k, _)| *k)
            .collect();
        for (s, g) in stale_sg {
            self.table.sg_remove(s, g);
        }
        // Snapshot both roles before mutating anything: on a
        // bidirectional tree the dead peer can be parent *and* child
        // of the same entry, and the repair below must see that.
        let as_child: Vec<McastAddr> = self
            .table
            .star_entries()
            .filter(|(p, e)| p.len() == 32 && e.children.contains(&gone))
            .map(|(p, _)| p.base())
            .collect();
        // Shared-tree parents: each group's children to reroute.
        let as_parent: Vec<(McastAddr, BTreeSet<Target>)> = self
            .table
            .star_entries()
            .filter(|(p, e)| p.len() == 32 && e.parent == Some(gone))
            .map(|(p, e)| (p.base(), e.children.clone()))
            .collect();
        // Children: prune the dead peer out.
        for g in as_child {
            actions.extend(self.prune(gone, g));
        }
        for (g, children) in as_parent {
            self.table.star_remove(g);
            for c in children {
                // The dead peer can be both parent and child of the
                // same bidirectional tree; never re-join toward it.
                if c != gone {
                    actions.extend(self.join(c, g, lookup));
                }
            }
        }
        actions
    }

    /// Per-group variant of [`BgmpRouter::peer_down`] for hosts whose
    /// route lookups are pre-resolved per group.
    pub fn peer_down_for_group(
        &mut self,
        peer: RouterId,
        g: McastAddr,
        lookup: &impl RouteLookup,
    ) -> Vec<BgmpAction> {
        self.lookup_memo.get_mut().remove(&g);
        let mut actions = Vec::new();
        let gone = Target::Peer(peer);
        let stale_sg: Vec<(SourceId, McastAddr)> = self
            .table
            .sg_entries()
            .filter(|((_, gg), e)| {
                *gg == g && (e.parent == Some(gone) || e.children.contains(&gone))
            })
            .map(|(k, _)| *k)
            .collect();
        for (s, gg) in stale_sg {
            self.table.sg_remove(s, gg);
        }
        let Some(e) = self.table.star_exact(g) else {
            return actions;
        };
        if e.parent == Some(gone) {
            let children = e.children.clone();
            self.table.star_remove(g);
            for c in children {
                if c != gone {
                    actions.extend(self.join(c, g, lookup));
                }
            }
        } else if e.children.contains(&gone) {
            actions.extend(self.prune(gone, g));
        }
        actions
    }

    /// A message arrived from a BGMP peer.
    pub fn from_peer(
        &mut self,
        from: RouterId,
        msg: BgmpMsg,
        lookup: &impl RouteLookup,
    ) -> Vec<BgmpAction> {
        match msg {
            BgmpMsg::Join(g) => self.join(Target::Peer(from), g, lookup),
            BgmpMsg::Prune(g) => self.prune(Target::Peer(from), g),
            BgmpMsg::SourceJoin(s, g) => self.source_join(Target::Peer(from), s, g, lookup),
            BgmpMsg::SourcePrune(s, g) => self.source_prune(Target::Peer(from), s, g),
        }
    }

    // ------------------------------------------------------------------
    // Source-specific branches (§5.3)
    // ------------------------------------------------------------------

    /// A source-specific join for (S,G) arrived from `child` (a peer,
    /// or the MIGP component when this router initiates the branch to
    /// stop encapsulation).
    pub fn source_join(
        &mut self,
        child: Target,
        s: SourceId,
        g: McastAddr,
        lookup: &impl RouteLookup,
    ) -> Vec<BgmpAction> {
        self.stats.source_joins += 1;
        let mut actions = Vec::new();
        if let Some(e) = self.table.sg_mut(s, g) {
            e.children.insert(child);
            return actions;
        }
        // If we are on the shared tree for g, the branch stops here:
        // copy the (*,G) target list and add the new child (§5.3, the
        // A4 behaviour). The source-specific join is NOT propagated.
        if let Some(star) = self.table.star_exact(g) {
            let mut children: BTreeSet<Target> = star.children.clone();
            children.insert(child);
            // The (*,G) parent participates in forwarding S's data but
            // remains the *shared-tree* parent; record it as a child
            // target for (S,G) forwarding purposes, excluding echo.
            if let Some(p) = star.parent {
                if p != child {
                    children.insert(p);
                }
            }
            self.table.sg_insert(
                s,
                g,
                SgEntry {
                    parent: None,
                    via_exit: None,
                    children,
                },
            );
            return actions;
        }
        // Otherwise propagate toward the source (like a shared-tree
        // join propagating toward the root domain).
        let mut via_exit = None;
        let parent = match lookup.toward_domain(s.domain) {
            Some(NextHop::ExternalPeer(p)) => {
                actions.push(BgmpAction::SendToPeer {
                    to: p,
                    msg: BgmpMsg::SourceJoin(s, g),
                });
                Some(Target::Peer(p))
            }
            Some(NextHop::Internal { exit }) => {
                via_exit = Some(exit);
                actions.push(BgmpAction::SourceJoinViaMigp {
                    exit,
                    source: s,
                    group: g,
                });
                Some(Target::Migp)
            }
            Some(NextHop::Local) => Some(Target::Migp),
            None => None,
        };
        let mut children = BTreeSet::new();
        children.insert(child);
        self.table.sg_insert(
            s,
            g,
            SgEntry {
                parent,
                via_exit,
                children,
            },
        );
        actions
    }

    /// A source-specific prune for (S,G) arrived from `child`.
    pub fn source_prune(&mut self, child: Target, s: SourceId, g: McastAddr) -> Vec<BgmpAction> {
        self.stats.source_prunes += 1;
        let mut actions = Vec::new();
        match self.table.sg_mut(s, g) {
            Some(e) => {
                e.children.remove(&child);
                let empty = e.children.is_empty();
                if empty {
                    let parent = e.parent;
                    let via_exit = e.via_exit;
                    self.table.sg_remove(s, g);
                    match parent {
                        Some(Target::Peer(p)) => {
                            actions.push(BgmpAction::SendToPeer {
                                to: p,
                                msg: BgmpMsg::SourcePrune(s, g),
                            });
                        }
                        Some(Target::Migp) => {
                            if let Some(exit) = via_exit {
                                actions.push(BgmpAction::SourcePruneViaMigp {
                                    exit,
                                    source: s,
                                    group: g,
                                });
                            }
                        }
                        None => {}
                    }
                }
            }
            None => {
                // Create-on-prune (§5.3, the F1 behaviour): on the
                // shared tree, record that S's data must not flow to
                // `child`, and if nothing is left downstream, push the
                // prune up the shared tree.
                if let Some(star) = self.table.star_exact(g) {
                    let mut children: BTreeSet<Target> = star.children.clone();
                    children.remove(&child);
                    let star_parent = star.parent;
                    if children.is_empty() {
                        if let Some(Target::Peer(p)) = star_parent {
                            actions.push(BgmpAction::SendToPeer {
                                to: p,
                                msg: BgmpMsg::SourcePrune(s, g),
                            });
                        }
                        // Keep the empty (S,G) so data from S is not
                        // forwarded to the pruned child meanwhile.
                    }
                    self.table.sg_insert(
                        s,
                        g,
                        SgEntry {
                            parent: None,
                            via_exit: None,
                            children,
                        },
                    );
                }
            }
        }
        actions
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Decides where a packet from source `s` for group `g`, arriving
    /// from `from` (`None` = injected locally), goes next.
    pub fn forward(
        &self,
        from: Option<Target>,
        s: SourceId,
        g: McastAddr,
        lookup: &impl RouteLookup,
    ) -> ForwardDecision {
        // (S,G) state overrides the shared tree for this source
        // (footnote 10 semantics, restricted to BGMP's safe subset).
        if let Some(e) = self.table.sg(s, g) {
            return ForwardDecision::Targets(e.forward_targets(from));
        }
        if let Some((_, e)) = self.table.star_lookup(g) {
            return ForwardDecision::Targets(e.forward_targets(from));
        }
        // Not on the tree: send it toward the root domain (§5). This
        // is the per-packet path, so the G-RIB resolution is memoized
        // per group until the routes change.
        match self.toward_group_memo(g, lookup) {
            Some(nh) => ForwardDecision::TowardRoot(nh),
            None => ForwardDecision::Drop,
        }
    }

    /// Memoized `lookup.toward_group(g)`. Negative results are cached
    /// too: a group with no covering route stays a cheap drop until
    /// [`BgmpRouter::grib_changed`] says otherwise.
    fn toward_group_memo(&self, g: McastAddr, lookup: &impl RouteLookup) -> Option<NextHop> {
        if let Some(hit) = self.lookup_memo.borrow().get(&g) {
            return *hit;
        }
        let resolved = lookup.toward_group(g);
        let mut memo = self.lookup_memo.borrow_mut();
        if memo.len() >= LOOKUP_MEMO_CAP {
            memo.clear();
        }
        memo.insert(g, resolved);
        resolved
    }
}

impl snapshot::Snapshot for BgmpStats {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u64(self.joins);
        enc.u64(self.prunes);
        enc.u64(self.source_joins);
        enc.u64(self.source_prunes);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(BgmpStats {
            joins: dec.u64()?,
            prunes: dec.u64()?,
            source_joins: dec.u64()?,
            source_prunes: dec.u64()?,
        })
    }
}

impl snapshot::SnapshotState for BgmpRouter {
    /// The forwarding table and counters are the durable state. The
    /// per-group lookup memo is a cache over the host's G-RIB, so a
    /// restore clears it — the same invalidation
    /// [`BgmpRouter::grib_changed`] performs when routes move — rather
    /// than trusting a snapshot to match the restored RIB.
    fn encode_state(&self, enc: &mut snapshot::Enc) {
        use snapshot::Snapshot;
        self.table.encode(enc);
        self.stats.encode(enc);
    }

    fn restore_state(&mut self, dec: &mut snapshot::Dec<'_>) -> Result<(), snapshot::SnapError> {
        use snapshot::Snapshot;
        self.table = ForwardingTable::decode(dec)?;
        self.stats = BgmpStats::decode(dec)?;
        self.grib_changed();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn g(x: u32) -> McastAddr {
        McastAddr(0xE000_0000 | x)
    }

    /// A scripted route table for tests.
    #[derive(Default)]
    struct Routes {
        groups: BTreeMap<McastAddr, NextHop>,
        domains: BTreeMap<bgp::Asn, NextHop>,
    }

    impl RouteLookup for Routes {
        fn toward_group(&self, gg: McastAddr) -> Option<NextHop> {
            self.groups.get(&gg).copied()
        }
        fn toward_domain(&self, asn: bgp::Asn) -> Option<NextHop> {
            self.domains.get(&asn).copied()
        }
    }

    #[test]
    fn join_creates_entry_and_propagates() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        let acts = r.join(Target::Migp, g(5), &routes);
        assert!(acts.contains(&BgmpAction::SendToPeer {
            to: 9,
            msg: BgmpMsg::Join(g(5))
        }));
        assert!(acts.contains(&BgmpAction::MigpSubscribe(g(5))));
        let e = r.table().star_exact(g(5)).unwrap();
        assert_eq!(e.parent, Some(Target::Peer(9)));
        assert!(e.children.contains(&Target::Migp));
        // Second join from a peer: no new upstream join.
        let acts = r.join(Target::Peer(7), g(5), &routes);
        assert!(acts.is_empty());
        assert_eq!(r.table().star_exact(g(5)).unwrap().children.len(), 2);
    }

    #[test]
    fn root_domain_join_uses_migp_parent() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::Local);
        let acts = r.join(Target::Peer(3), g(5), &routes);
        // No upstream peer; the MIGP component becomes the parent and
        // the router joins the group inside its domain (§5.2).
        assert!(acts.contains(&BgmpAction::MigpSubscribe(g(5))));
        assert!(!acts
            .iter()
            .any(|a| matches!(a, BgmpAction::SendToPeer { .. })));
        assert_eq!(
            r.table().star_exact(g(5)).unwrap().parent,
            Some(Target::Migp)
        );
    }

    #[test]
    fn internal_next_hop_joins_via_migp() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::Internal { exit: 4 });
        let acts = r.join(Target::Peer(3), g(5), &routes);
        assert!(acts.contains(&BgmpAction::JoinViaMigp {
            exit: 4,
            group: g(5)
        }));
        assert_eq!(
            r.table().star_exact(g(5)).unwrap().parent,
            Some(Target::Migp)
        );
    }

    #[test]
    fn prune_tears_down_when_last_child_leaves() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        r.join(Target::Peer(7), g(5), &routes);
        r.join(Target::Peer(8), g(5), &routes);
        // First prune: entry stays.
        let acts = r.prune(Target::Peer(7), g(5));
        assert!(acts.is_empty());
        assert!(r.table().star_exact(g(5)).is_some());
        // Last prune: entry removed, prune sent upstream.
        let acts = r.prune(Target::Peer(8), g(5));
        assert!(acts.contains(&BgmpAction::SendToPeer {
            to: 9,
            msg: BgmpMsg::Prune(g(5))
        }));
        assert!(r.table().star_exact(g(5)).is_none());
    }

    #[test]
    fn bidirectional_forwarding() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        r.join(Target::Peer(7), g(5), &routes);
        r.join(Target::Migp, g(5), &routes);
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        // From the parent: to both children.
        match r.forward(Some(Target::Peer(9)), s, g(5), &routes) {
            ForwardDecision::Targets(t) => {
                assert_eq!(t, vec![Target::Peer(7), Target::Migp]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // From a child: up to the parent and across to the sibling —
        // data flows both directions (§5.2).
        match r.forward(Some(Target::Peer(7)), s, g(5), &routes) {
            ForwardDecision::Targets(t) => {
                assert_eq!(t, vec![Target::Peer(9), Target::Migp]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_member_sender_forwards_toward_root() {
        let r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        match r.forward(None, s, g(5), &routes) {
            ForwardDecision::TowardRoot(NextHop::ExternalPeer(9)) => {}
            other => panic!("unexpected {other:?}"),
        }
        // No route at all: drop.
        assert_eq!(r.forward(None, s, g(6), &routes), ForwardDecision::Drop);
    }

    #[test]
    fn source_join_stops_at_shared_tree() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        routes.domains.insert(42, NextHop::ExternalPeer(2));
        r.join(Target::Peer(7), g(5), &routes);
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        // We are on the shared tree: the branch terminates here, no
        // propagation (§5.3, A4's behaviour).
        let acts = r.source_join(Target::Peer(3), s, g(5), &routes);
        assert!(acts.is_empty(), "{acts:?}");
        let e = r.table().sg(s, g(5)).unwrap();
        assert!(e.children.contains(&Target::Peer(3)));
        // Copied the shared-tree targets too.
        assert!(e.children.contains(&Target::Peer(7)));
        assert!(e.children.contains(&Target::Peer(9)));
        // Data from S now reaches the branch child as well.
        match r.forward(Some(Target::Peer(9)), s, g(5), &routes) {
            ForwardDecision::Targets(t) => {
                assert!(t.contains(&Target::Peer(3)));
                assert!(t.contains(&Target::Peer(7)));
                assert!(!t.contains(&Target::Peer(9)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn source_join_propagates_off_tree() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.domains.insert(42, NextHop::ExternalPeer(2));
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        let acts = r.source_join(Target::Peer(3), s, g(5), &routes);
        assert!(acts.contains(&BgmpAction::SendToPeer {
            to: 2,
            msg: BgmpMsg::SourceJoin(s, g(5))
        }));
        assert_eq!(r.table().sg(s, g(5)).unwrap().parent, Some(Target::Peer(2)));
    }

    #[test]
    fn source_prune_create_on_prune_propagates_up_shared_tree() {
        // F1's situation: on the shared tree with only the MIGP child;
        // F2 source-prunes; F1 must push the prune up the shared tree.
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        r.join(Target::Migp, g(5), &routes);
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        let acts = r.source_prune(Target::Migp, s, g(5));
        assert!(
            acts.contains(&BgmpAction::SendToPeer {
                to: 9,
                msg: BgmpMsg::SourcePrune(s, g(5))
            }),
            "{acts:?}"
        );
        // S's data no longer flows to the MIGP, but other groups and
        // sources are unaffected.
        match r.forward(Some(Target::Peer(9)), s, g(5), &routes) {
            ForwardDecision::Targets(t) => assert!(t.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        let other = SourceId {
            domain: 43,
            host: 0,
        };
        match r.forward(Some(Target::Peer(9)), other, g(5), &routes) {
            ForwardDecision::Targets(t) => assert_eq!(t, vec![Target::Migp]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn source_prune_removes_branch_child() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.domains.insert(42, NextHop::ExternalPeer(2));
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        r.source_join(Target::Peer(3), s, g(5), &routes);
        r.source_join(Target::Peer(4), s, g(5), &routes);
        let acts = r.source_prune(Target::Peer(3), s, g(5));
        assert!(acts.is_empty());
        // Last child gone: prune propagates toward the source.
        let acts = r.source_prune(Target::Peer(4), s, g(5));
        assert!(acts.contains(&BgmpAction::SendToPeer {
            to: 2,
            msg: BgmpMsg::SourcePrune(s, g(5))
        }));
        assert!(r.table().sg(s, g(5)).is_none());
    }

    /// Wraps a scripted table and counts how often BGMP actually asks
    /// it — the memo should absorb repeat group lookups.
    struct Counting<'a> {
        inner: &'a Routes,
        group_calls: std::cell::Cell<u32>,
    }

    impl RouteLookup for Counting<'_> {
        fn toward_group(&self, gg: McastAddr) -> Option<NextHop> {
            self.group_calls.set(self.group_calls.get() + 1);
            self.inner.toward_group(gg)
        }
        fn toward_domain(&self, asn: bgp::Asn) -> Option<NextHop> {
            self.inner.toward_domain(asn)
        }
    }

    #[test]
    fn forward_memoizes_grib_lookup_until_invalidated() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        let counting = Counting {
            inner: &routes,
            group_calls: std::cell::Cell::new(0),
        };
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        // Repeated packets for the same off-tree group resolve the
        // G-RIB once.
        for _ in 0..3 {
            assert_eq!(
                r.forward(None, s, g(5), &counting),
                ForwardDecision::TowardRoot(NextHop::ExternalPeer(9))
            );
        }
        assert_eq!(counting.group_calls.get(), 1);
        // Negative results are memoized too.
        for _ in 0..3 {
            assert_eq!(r.forward(None, s, g(6), &counting), ForwardDecision::Drop);
        }
        assert_eq!(counting.group_calls.get(), 2);
        // After a G-RIB change the memo is stale and must be dropped:
        // the next packet re-resolves and sees the new route.
        let mut routes2 = Routes::default();
        routes2.groups.insert(g(5), NextHop::ExternalPeer(8));
        let counting2 = Counting {
            inner: &routes2,
            group_calls: std::cell::Cell::new(0),
        };
        r.grib_changed();
        assert_eq!(
            r.forward(None, s, g(5), &counting2),
            ForwardDecision::TowardRoot(NextHop::ExternalPeer(8))
        );
        assert_eq!(counting2.group_calls.get(), 1);
    }

    #[test]
    fn resume_rebuilds_memo_lazily_not_upfront() {
        use snapshot::SnapshotState;
        // A router with many groups' worth of state and a warm memo.
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        for x in 0..64 {
            routes.groups.insert(g(x), NextHop::ExternalPeer(9));
            routes
                .groups
                .insert(g(0x1000 + x), NextHop::ExternalPeer(9));
            // Durable forwarding state for g(x)…
            r.join(Target::Migp, g(x), &routes);
            // …and a warm memo slot for the stateless g(0x1000+x)
            // (forward with no entry resolves the G-RIB and caches).
            r.forward(None, s, g(0x1000 + x), &routes);
        }
        assert_eq!(r.lookup_memo.borrow().len(), 64, "memo is warm");
        let mut enc = snapshot::Enc::new();
        r.encode_state(&mut enc);
        let bytes = enc.finish();

        // Resume must not resolve any group up-front: the restored
        // memo is cold and the route table is never consulted.
        let counting = Counting {
            inner: &routes,
            group_calls: std::cell::Cell::new(0),
        };
        let mut r2 = BgmpRouter::new(1);
        r2.restore_state(&mut snapshot::Dec::new(&bytes)).unwrap();
        assert_eq!(counting.group_calls.get(), 0, "no lookups during resume");
        assert_eq!(r2.lookup_memo.borrow().len(), 0, "memo restarts cold");
        assert_eq!(r2.table().star_len(), 64, "forwarding state restored");

        // First packet per group fills exactly that group's slot.
        r2.forward(None, s, g(0x1000), &counting);
        assert_eq!(counting.group_calls.get(), 1);
        assert_eq!(r2.lookup_memo.borrow().len(), 1, "one entry, not O(groups)");
    }

    #[test]
    fn grib_changed_prefixes_invalidates_only_covered_groups() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        routes.groups.insert(g(0x100), NextHop::ExternalPeer(9));
        let counting = Counting {
            inner: &routes,
            group_calls: std::cell::Cell::new(0),
        };
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        r.forward(None, s, g(5), &counting);
        r.forward(None, s, g(0x100), &counting);
        assert_eq!(counting.group_calls.get(), 2);

        // A delta for the /24 covering g(5) leaves g(0x100) memoized.
        let p: mcast_addr::Prefix = "224.0.0.0/24".parse().unwrap();
        r.grib_changed_prefixes(&[p]);
        assert_eq!(r.lookup_memo.borrow().len(), 1);
        r.forward(None, s, g(0x100), &counting);
        assert_eq!(counting.group_calls.get(), 2, "uncovered group stays hot");
        r.forward(None, s, g(5), &counting);
        assert_eq!(counting.group_calls.get(), 3, "covered group re-resolves");
    }

    #[test]
    fn peer_down_flushes_memo() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        assert_eq!(
            r.forward(None, s, g(5), &routes),
            ForwardDecision::TowardRoot(NextHop::ExternalPeer(9))
        );
        // Peer 9 dies and the G-RIB fails over to peer 8. Without the
        // flush, forward would keep serving the memoized dead hop.
        let mut failed_over = Routes::default();
        failed_over.groups.insert(g(5), NextHop::ExternalPeer(8));
        r.peer_down(9, &failed_over);
        assert_eq!(
            r.forward(None, s, g(5), &failed_over),
            ForwardDecision::TowardRoot(NextHop::ExternalPeer(8))
        );
    }

    #[test]
    fn peer_down_never_rejoins_the_dead_peer() {
        // Bidirectional shared tree: peer 9 is the parent (next hop
        // toward the root) *and* a child (it joined through us) of the
        // same group. When the session to 9 dies, the repair must not
        // re-admit 9 — pre-fix, the reroute loop issued a join for the
        // dead peer, leaving an orphaned branch toward it.
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        r.join(Target::Migp, g(5), &routes);
        r.join(Target::Peer(9), g(5), &routes);
        let e = r.table().star_exact(g(5)).unwrap();
        assert_eq!(e.parent, Some(Target::Peer(9)));
        assert!(e.children.contains(&Target::Peer(9)));

        // The G-RIB has failed over to peer 8 by the time peer_down
        // runs (same contract as the engine's repair path).
        let mut failed_over = Routes::default();
        failed_over.groups.insert(g(5), NextHop::ExternalPeer(8));
        let acts = r.peer_down(9, &failed_over);

        assert!(
            !acts.iter().any(|a| matches!(
                a,
                BgmpAction::SendToPeer {
                    to: 9,
                    msg: BgmpMsg::Join(_)
                }
            )),
            "must not join toward the dead peer: {acts:?}"
        );
        let e = r.table().star_exact(g(5)).unwrap();
        assert_eq!(e.parent, Some(Target::Peer(8)));
        assert!(
            !e.children.contains(&Target::Peer(9)),
            "dead peer re-admitted as a child: {:?}",
            e.children
        );
        assert!(e.children.contains(&Target::Migp));
    }

    #[test]
    fn prune_clears_stale_sg_state() {
        let mut r = BgmpRouter::new(1);
        let mut routes = Routes::default();
        routes.groups.insert(g(5), NextHop::ExternalPeer(9));
        r.join(Target::Peer(7), g(5), &routes);
        let s = SourceId {
            domain: 42,
            host: 0,
        };
        r.source_join(Target::Peer(3), s, g(5), &routes);
        r.prune(Target::Peer(7), g(5));
        assert!(r.table().star_exact(g(5)).is_none());
        assert!(
            r.table().sg(s, g(5)).is_none(),
            "S,G must die with the tree"
        );
    }
}
