//! A minimal slab arena: stable `u32` keys, O(1) insert/remove with
//! slot reuse. The forwarding table keeps its entries here and its
//! ordered indexes store slab keys, so join/prune churn recycles
//! entry slots instead of round-tripping the global allocator and
//! the tree maps rebalance over 4-byte values instead of whole
//! entries.

/// An arena of `T` with stable integer keys and a free list.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `v`, reusing a freed slot when one exists. The returned
    /// key is stable until `remove`.
    pub fn insert(&mut self, v: T) -> u32 {
        if let Some(i) = self.free.pop() {
            debug_assert!(self.slots[i as usize].is_none());
            self.slots[i as usize] = Some(v);
            i
        } else {
            self.slots.push(Some(v));
            (self.slots.len() - 1) as u32
        }
    }

    /// Takes the value at `i` and recycles its slot.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not a live key — slab keys are internal to the
    /// owning table, so a dead key is a table-invariant bug.
    pub fn remove(&mut self, i: u32) -> T {
        let v = self.slots[i as usize].take().expect("live slab key");
        self.free.push(i);
        v
    }

    /// The value at `i`. Panics on a dead key (see [`Slab::remove`]).
    pub fn get(&self, i: u32) -> &T {
        self.slots[i as usize].as_ref().expect("live slab key")
    }

    /// Mutable value at `i`. Panics on a dead key.
    pub fn get_mut(&mut self, i: u32) -> &mut T {
        self.slots[i as usize].as_mut().expect("live slab key")
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_ne!(a, b);
        assert_eq!(*s.get(a), "a");
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.len(), 1);
        assert_eq!(*s.get(b), "b");
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.insert(2);
        s.remove(a);
        let c = s.insert(3);
        assert_eq!(c, a, "freed slot recycled");
        assert_eq!(*s.get(c), 3);
        assert_eq!(s.slots.len(), 2, "no growth after reuse");
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s = Slab::new();
        let a = s.insert(vec![1]);
        s.get_mut(a).push(2);
        assert_eq!(*s.get(a), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "live slab key")]
    fn dead_key_panics() {
        let mut s = Slab::new();
        let a = s.insert(0);
        s.remove(a);
        s.get(a);
    }
}
