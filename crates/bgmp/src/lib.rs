//! The Border Gateway Multicast Protocol (BGMP).
//!
//! BGMP is the other half of the paper's contribution: border routers
//! build a **bidirectional shared tree** per group, rooted at the
//! group's root domain — the domain whose MASC-claimed range covers
//! the group address, found by G-RIB lookup (§5). Source-specific
//! *branches* (not full source trees, §5.3) remove encapsulation
//! overhead where a source's shortest path diverges from the shared
//! tree.
//!
//! * [`entry`] — (*,G), (S,G), and (*,G-prefix) forwarding state with
//!   bidirectional forwarding rules;
//! * [`msg`] — peer messages, the [`msg::RouteLookup`] trait the host
//!   backs with its G-RIB/M-RIB, and engine actions;
//! * [`router`] — the sans-io per-border-router engine.

pub mod entry;
pub mod msg;
pub mod router;
pub mod slab;

pub use entry::{ForwardingTable, GroupEntry, SgEntry, SourceId, Target};
pub use msg::{BgmpAction, BgmpMsg, NextHop, RouteLookup};
pub use router::{BgmpRouter, BgmpStats, ForwardDecision};
