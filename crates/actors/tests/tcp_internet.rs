//! End-to-end test of the tokio deployment: a five-domain internet of
//! router actors over real localhost TCP, echoing the simulator's
//! core scenario — group routes propagate, a shared tree forms, data
//! flows bidirectionally.

use bgp::ExportPolicy;
use masc_bgmp_actors::{ActorNet, Cmd};
use topology::DomainGraph;

/// A:provider of B and C; B provider of D; C provider of E.
fn small_graph() -> DomainGraph {
    let mut g = DomainGraph::new();
    let a = g.add_domain("A");
    let b = g.add_domain("B");
    let c = g.add_domain("C");
    let d = g.add_domain("D");
    let e = g.add_domain("E");
    g.add_provider_customer(a, b);
    g.add_provider_customer(a, c);
    g.add_provider_customer(b, d);
    g.add_provider_customer(c, e);
    g
}

#[tokio::test(flavor = "multi_thread")]
async fn group_routes_tree_and_data_over_tcp() {
    let graph = small_graph();
    let net = ActorNet::start(&graph, ExportPolicy::Open)
        .await
        .expect("start");
    let n = graph.len();

    // 1. BGP converges: every router's G-RIB holds every range.
    let converged = net.wait_until(|_, snap| snap.grib.len() >= n).await;
    assert!(converged, "group routes must reach every router");

    // Root domain: B (index 1). The group is the first address of B's
    // range.
    let g = net.ranges[1].base();

    // 2. D (index 3) and E (index 4) join; B itself joins as initiator.
    for i in [1usize, 3, 4] {
        net.routers[i].cmd.send(Cmd::JoinGroup(g)).await.unwrap();
    }
    // The tree must form through A (index 0): all of B, A, C, D, E
    // carry state (D and E joined through their providers).
    let tree_ok = net
        .wait_until(|i, snap| {
            let on_tree = snap.star_groups.contains(&g);
            match i {
                0..=4 => on_tree,
                _ => true,
            }
        })
        .await;
    assert!(tree_ok, "shared tree must span all five domains");

    // 3. E sends: D and B receive exactly once (bidirectional flow
    // through A without a root detour for D... the tree IS via the
    // root here, but correctness is: all members get it).
    net.routers[4]
        .cmd
        .send(Cmd::SendData { group: g, id: 1 })
        .await
        .unwrap();
    let delivered = net
        .wait_until(|i, snap| match i {
            1 | 3 => snap.delivered.contains(&(1, g)),
            _ => true,
        })
        .await;
    assert!(delivered, "E's data must reach B and D over TCP");

    // The sender must not have received its own packet.
    let snap_e = net.routers[4].snapshot().await;
    assert!(snap_e.delivered.is_empty() || !snap_e.delivered.contains(&(1, g)));

    // 4. Leave: D prunes; new data reaches only B.
    net.routers[3].cmd.send(Cmd::LeaveGroup(g)).await.unwrap();
    // Wait for the prune to clear D's branch on B's side: B keeps
    // state (it has a member), D loses its (*,G).
    let pruned = net
        .wait_until(|i, snap| match i {
            3 => !snap.star_groups.contains(&g),
            _ => true,
        })
        .await;
    assert!(pruned, "D's state must go away after leave");

    net.routers[4]
        .cmd
        .send(Cmd::SendData { group: g, id: 2 })
        .await
        .unwrap();
    let ok = net
        .wait_until(|i, snap| match i {
            1 => snap.delivered.contains(&(2, g)),
            _ => true,
        })
        .await;
    assert!(ok, "B still receives after D left");
    let snap_d = net.routers[3].snapshot().await;
    assert!(
        !snap_d.delivered.contains(&(2, g)),
        "D must not receive after leaving"
    );

    net.stop().await;
}

#[tokio::test(flavor = "multi_thread")]
async fn provider_customer_policy_over_tcp() {
    // Two providers peered, one customer each: with Gao-Rexford export
    // the customers see each other's routes (customer->provider->peer->
    // provider->customer is valley-free), but a peer of a peer would
    // not. Use a 3-backbone chain to show truncation.
    let mut g = DomainGraph::new();
    let p1 = g.add_domain("P1");
    let p2 = g.add_domain("P2");
    let p3 = g.add_domain("P3");
    g.add_peering(p1, p2);
    g.add_peering(p2, p3);
    let c1 = g.add_domain("C1");
    g.add_provider_customer(p1, c1);

    let net = ActorNet::start(&g, ExportPolicy::ProviderCustomer)
        .await
        .expect("start");
    // C1's range must reach P2 (peer of its provider) but NOT P3
    // (peer of a peer).
    let ok = net
        .wait_until(|i, snap| {
            let has_c1 = snap.grib.iter().any(|(p, _)| *p == net.ranges[3]);
            match i {
                0 | 1 | 3 => has_c1,
                _ => true,
            }
        })
        .await;
    assert!(ok, "C1's route must reach P1 and P2");
    // Give any stray propagation a moment, then assert P3 never saw it.
    tokio::time::sleep(std::time::Duration::from_millis(200)).await;
    let snap_p3 = net.routers[2].snapshot().await;
    assert!(
        !snap_p3.grib.iter().any(|(p, _)| *p == net.ranges[3]),
        "peer-learned routes must not be re-exported to another peer"
    );
    net.stop().await;
}

/// Hold-timer liveness: when a peer process dies without closing the
/// conversation cleanly, the survivor's session hold timer flushes its
/// routes within seconds.
#[tokio::test(flavor = "multi_thread")]
async fn hold_timer_flushes_dead_peer() {
    let mut g = DomainGraph::new();
    let a = g.add_domain("A");
    let b = g.add_domain("B");
    g.add_provider_customer(a, b);
    let net = ActorNet::start(&g, ExportPolicy::Open)
        .await
        .expect("start");
    assert!(net.wait_until(|_, s| s.grib.len() >= 2).await);

    // Kill B abruptly (drop its handle + task). Its socket closes, and
    // even if it did not, A's hold timer would fire.
    let mut routers = net.routers;
    let b_handle = routers.remove(1);
    let b_range = net.ranges[1];
    b_handle.shutdown().await;

    // A must flush B's group route.
    let a_handle = &routers[0];
    let mut flushed = false;
    for _ in 0..80 {
        let snap = a_handle.snapshot().await;
        if !snap.grib.iter().any(|(p, _)| *p == b_range) {
            flushed = true;
            break;
        }
        tokio::time::sleep(std::time::Duration::from_millis(100)).await;
    }
    assert!(flushed, "A must flush the dead peer's routes");
    for h in routers {
        h.shutdown().await;
    }
}
