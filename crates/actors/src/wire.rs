//! The wire format spoken between border-router actors.
//!
//! BGMP runs over persistent TCP connections between peers (§5.2:
//! "BGMP border routers have persistent TCP peering sessions with each
//! other"), exactly like BGP. This deployment multiplexes BGP, BGMP,
//! and MASC messages over one length-delimited JSON stream per peer
//! pair — the protocol engines themselves are the same sans-io state
//! machines the simulator drives.

use bgmp::{BgmpMsg, SourceId};
use bgp::{BgpMsg, RouterId};
use masc::{DomainAsn, MascMsg};
use mcast_addr::McastAddr;
use serde::{Deserialize, Serialize};

/// A frame between two router actors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireMsg {
    /// First frame on every connection: who is calling.
    Hello {
        /// The connecting router.
        router: RouterId,
    },
    /// A BGP message.
    Bgp(BgpMsg),
    /// A BGMP message.
    Bgmp(BgmpMsg),
    /// A MASC message (domain-level, carried over the border-router
    /// session).
    Masc {
        /// Sending domain.
        from: DomainAsn,
        /// Payload.
        msg: MascMsg,
    },
    /// A multicast data packet.
    Data {
        /// The originating host.
        source: SourceId,
        /// Destination group.
        group: McastAddr,
        /// Packet id for delivery accounting.
        id: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_addr::Prefix;

    #[test]
    fn roundtrip_json() {
        let msgs = vec![
            WireMsg::Hello { router: 7 },
            WireMsg::Bgmp(BgmpMsg::Join(McastAddr(0xE000_0001))),
            WireMsg::Data {
                source: SourceId { domain: 3, host: 9 },
                group: McastAddr(0xE000_0001),
                id: 42,
            },
            WireMsg::Masc {
                from: 2,
                msg: MascMsg::Release {
                    claimer: 2,
                    prefix: "224.0.0.0/24".parse::<Prefix>().unwrap(),
                },
            },
        ];
        for m in msgs {
            let enc = serde_json::to_vec(&m).unwrap();
            let dec: WireMsg = serde_json::from_slice(&enc).unwrap();
            assert_eq!(format!("{m:?}"), format!("{dec:?}"));
        }
    }
}
