//! A border router as an async actor: the same sans-io BGP and BGMP
//! engines the simulator drives, fed from real TCP sessions.
//!
//! One actor per domain (single-border-router deployment): peers are
//! always external, so the BGMP route lookups reduce to Local vs
//! ExternalPeer. Local group membership stands in for the MIGP (a
//! one-router domain *is* its own interior).

use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;

use bgmp::{BgmpAction, BgmpRouter, ForwardDecision, NextHop, RouteLookup, SourceId, Target};
use bgp::{BgpEvent, BgpSpeaker, ExportPolicy, PeerConfig, RouterId};
use mcast_addr::{McastAddr, Prefix};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, oneshot};

use bgp::{Session, SessionAction, SessionEvent, SessionTimers};

use crate::codec::{read_frame, write_frame};
use crate::wire::WireMsg;

/// Static configuration of one router actor.
#[derive(Debug, Clone)]
pub struct RouterSpec {
    /// Router id (globally unique).
    pub id: RouterId,
    /// The domain it fronts.
    pub asn: bgp::Asn,
    /// Local listen address.
    pub listen: SocketAddr,
    /// Peers: BGP config plus where to reach them. `dial` is set on
    /// exactly one side of each pair (the side with the higher id
    /// dials, by convention of [`crate::harness`]).
    pub peers: Vec<(PeerConfig, SocketAddr, bool)>,
    /// Export policy.
    pub policy: ExportPolicy,
}

/// Commands the test harness sends a running router.
#[derive(Debug)]
pub enum Cmd {
    /// Originate a group route (MASC granted a range).
    OriginateGroup(Prefix),
    /// A local host joined the group.
    JoinGroup(McastAddr),
    /// A local host left the group.
    LeaveGroup(McastAddr),
    /// A local host multicasts one packet.
    SendData {
        /// Destination group.
        group: McastAddr,
        /// Packet id.
        id: u64,
    },
    /// Snapshot internal state.
    Query(oneshot::Sender<Snapshot>),
    /// Stop the actor.
    Shutdown,
}

/// Observable state for assertions.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Selected group routes: (prefix, origin ASN).
    pub grib: Vec<(Prefix, bgp::Asn)>,
    /// Groups with (*,G) state here.
    pub star_groups: Vec<McastAddr>,
    /// Packets delivered to local members: (id, group).
    pub delivered: Vec<(u64, McastAddr)>,
    /// Connected peers.
    pub peers_up: Vec<RouterId>,
}

/// Handle to a spawned router actor.
pub struct RouterHandle {
    /// Command channel.
    pub cmd: mpsc::Sender<Cmd>,
    /// The spec it was started with.
    pub spec: RouterSpec,
    task: tokio::task::JoinHandle<()>,
}

impl RouterHandle {
    /// Queries a state snapshot.
    pub async fn snapshot(&self) -> Snapshot {
        let (tx, rx) = oneshot::channel();
        let _ = self.cmd.send(Cmd::Query(tx)).await;
        rx.await.unwrap_or_default()
    }

    /// Stops the actor.
    pub async fn shutdown(self) {
        let _ = self.cmd.send(Cmd::Shutdown).await;
        let _ = self.task.await;
    }
}

/// Route lookups for a single-border-router domain.
struct LocalLookup<'a> {
    speaker: &'a BgpSpeaker,
}

impl RouteLookup for LocalLookup<'_> {
    fn toward_group(&self, g: McastAddr) -> Option<NextHop> {
        let r = self.speaker.rib().lookup_group(g)?;
        Some(if r.local {
            NextHop::Local
        } else {
            NextHop::ExternalPeer(r.next_hop)
        })
    }
    fn toward_domain(&self, asn: bgp::Asn) -> Option<NextHop> {
        if asn == self.speaker.asn() {
            return Some(NextHop::Local);
        }
        let r = self.speaker.rib().lookup_domain(asn)?;
        Some(if r.local {
            NextHop::Local
        } else {
            NextHop::ExternalPeer(r.next_hop)
        })
    }
}

/// Spawns a router actor; resolves once it is listening.
pub async fn spawn_router(spec: RouterSpec) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(spec.listen).await?;
    let (cmd_tx, cmd_rx) = mpsc::channel(256);
    let spec2 = spec.clone();
    let task = tokio::spawn(run_router(spec2, listener, cmd_rx));
    Ok(RouterHandle {
        cmd: cmd_tx,
        spec,
        task,
    })
}

enum Event {
    FromPeer(RouterId, WireMsg),
    PeerUp(RouterId, mpsc::Sender<WireMsg>),
    PeerGone(RouterId),
    /// Periodic liveness tick (keepalive/hold timers).
    Tick,
    Command(Cmd),
}

/// Milliseconds between liveness ticks. The actor's session clock is
/// derived from the tick count (`ticks * TICK_MS / 1000` seconds since
/// actor start), so session timing never reads the wall clock: the
/// tokio timer drives the cadence and the counter is the only time
/// source, keeping the actor path consistent with the workspace rule
/// that all time flows from an injected clock.
const TICK_MS: u64 = 500;

/// Seconds of session time after `ticks` liveness ticks.
fn secs_at(ticks: u64) -> u64 {
    ticks * TICK_MS / 1000
}

async fn run_router(spec: RouterSpec, listener: TcpListener, mut cmd_rx: mpsc::Receiver<Cmd>) {
    let peers_cfg: Vec<PeerConfig> = spec.peers.iter().map(|(c, _, _)| *c).collect();
    let mut speaker = BgpSpeaker::new(spec.id, spec.asn, peers_cfg, spec.policy);
    let mut bgmp = BgmpRouter::new(spec.id);
    let mut members: BTreeSet<McastAddr> = BTreeSet::new();
    let mut delivered: Vec<(u64, McastAddr)> = Vec::new();
    let mut writers: BTreeMap<RouterId, mpsc::Sender<WireMsg>> = BTreeMap::new();
    // Hold-timer liveness per peer (§5.2's persistent sessions need
    // failure detection; see `bgp::session`). Short real-time values:
    // keepalive every 2 s, dead after 6 s of silence.
    let session_timers = SessionTimers {
        keepalive: 2,
        hold: 6,
        retry: 3600,
    };
    let mut sessions: BTreeMap<RouterId, Session> = BTreeMap::new();
    // Tick-driven session clock (see `secs_at`).
    let mut ticks: u64 = 0;

    let (ev_tx, mut ev_rx) = mpsc::channel::<Event>(1024);

    // Liveness ticker.
    {
        let ev_tx = ev_tx.clone();
        tokio::spawn(async move {
            let mut interval = tokio::time::interval(std::time::Duration::from_millis(TICK_MS));
            loop {
                interval.tick().await;
                if ev_tx.send(Event::Tick).await.is_err() {
                    break;
                }
            }
        });
    }

    // Accept loop.
    {
        let ev_tx = ev_tx.clone();
        let my_id = spec.id;
        tokio::spawn(async move {
            loop {
                let Ok((sock, _)) = listener.accept().await else {
                    break;
                };
                let ev_tx = ev_tx.clone();
                tokio::spawn(handle_conn(sock, None, my_id, ev_tx));
            }
        });
    }
    // Dial-out connections (with retry until the peer listens).
    for (cfg, addr, dial) in &spec.peers {
        if *dial {
            let ev_tx = ev_tx.clone();
            let peer_id = cfg.router;
            let addr = *addr;
            let my_id = spec.id;
            tokio::spawn(async move {
                for _ in 0..100 {
                    match TcpStream::connect(addr).await {
                        Ok(sock) => {
                            handle_conn(sock, Some(peer_id), my_id, ev_tx).await;
                            return;
                        }
                        Err(_) => tokio::time::sleep(std::time::Duration::from_millis(30)).await,
                    }
                }
            });
        }
    }

    // Helper: fan BGP outputs to peers.
    async fn ship_bgp(outs: Vec<bgp::OutMsg>, writers: &BTreeMap<RouterId, mpsc::Sender<WireMsg>>) {
        for o in outs {
            if let Some(w) = writers.get(&o.to) {
                let _ = w.send(WireMsg::Bgp(o.msg)).await;
            }
        }
    }

    loop {
        let ev = tokio::select! {
            Some(ev) = ev_rx.recv() => ev,
            Some(cmd) = cmd_rx.recv() => Event::Command(cmd),
            else => break,
        };
        match ev {
            Event::PeerUp(peer, writer) => {
                writers.insert(peer, writer);
                let mut sess = Session::new(session_timers);
                sess.on_event(secs_at(ticks), SessionEvent::TransportUp);
                sess.on_event(secs_at(ticks), SessionEvent::MessageReceived);
                sessions.insert(peer, sess);
                let outs = speaker.handle(BgpEvent::PeerUp(peer));
                bgmp.grib_changed_prefixes(&speaker.take_changed_groups());
                ship_bgp(outs, &writers).await;
            }
            Event::PeerGone(peer) => {
                writers.remove(&peer);
                sessions.remove(&peer);
                let outs = speaker.handle(BgpEvent::PeerDown(peer));
                bgmp.grib_changed_prefixes(&speaker.take_changed_groups());
                ship_bgp(outs, &writers).await;
            }
            Event::Tick => {
                ticks += 1;
                let now = secs_at(ticks);
                let mut dead = Vec::new();
                for (peer, sess) in sessions.iter_mut() {
                    match sess.on_tick(now) {
                        SessionAction::SendKeepalive => {
                            if let Some(w) = writers.get(peer) {
                                let _ = w.send(WireMsg::Hello { router: spec.id }).await;
                            }
                        }
                        SessionAction::Down => dead.push(*peer),
                        _ => {}
                    }
                }
                for peer in dead {
                    // Hold timer expired: the peer is gone even though
                    // the TCP socket may linger.
                    writers.remove(&peer);
                    sessions.remove(&peer);
                    let outs = speaker.handle(BgpEvent::PeerDown(peer));
                    bgmp.grib_changed_prefixes(&speaker.take_changed_groups());
                    ship_bgp(outs, &writers).await;
                }
            }
            Event::FromPeer(peer, msg) => {
                if let Some(sess) = sessions.get_mut(&peer) {
                    sess.on_event(secs_at(ticks), SessionEvent::MessageReceived);
                }
                match msg {
                    WireMsg::Bgp(m) => {
                        let outs = speaker.handle(BgpEvent::FromPeer { from: peer, msg: m });
                        // The G-RIB may have changed; memoized per-group
                        // forwarding hops are stale.
                        bgmp.grib_changed_prefixes(&speaker.take_changed_groups());
                        ship_bgp(outs, &writers).await;
                    }
                    WireMsg::Bgmp(m) => {
                        let actions = {
                            let lookup = LocalLookup { speaker: &speaker };
                            bgmp.from_peer(peer, m, &lookup)
                        };
                        ship_bgmp(actions, &writers, &mut members).await;
                    }
                    WireMsg::Data { source, group, id } => {
                        let decision = {
                            let lookup = LocalLookup { speaker: &speaker };
                            bgmp.forward(Some(Target::Peer(peer)), source, group, &lookup)
                        };
                        dispatch_data(
                            decision,
                            Some(Target::Peer(peer)),
                            source,
                            group,
                            id,
                            &writers,
                            &members,
                            &mut delivered,
                        )
                        .await;
                    }
                    WireMsg::Hello { .. } | WireMsg::Masc { .. } => {}
                }
            }
            Event::Command(cmd) => match cmd {
                Cmd::OriginateGroup(p) => {
                    let outs = speaker.originate_group(p);
                    ship_bgp(outs, &writers).await;
                    let outs = speaker.originate_domain();
                    bgmp.grib_changed_prefixes(&speaker.take_changed_groups());
                    ship_bgp(outs, &writers).await;
                }
                Cmd::JoinGroup(g) => {
                    members.insert(g);
                    let actions = {
                        let lookup = LocalLookup { speaker: &speaker };
                        bgmp.join(Target::Migp, g, &lookup)
                    };
                    ship_bgmp(actions, &writers, &mut members).await;
                }
                Cmd::LeaveGroup(g) => {
                    members.remove(&g);
                    let actions = bgmp.prune(Target::Migp, g);
                    ship_bgmp(actions, &writers, &mut members).await;
                }
                Cmd::SendData { group, id } => {
                    let source = SourceId {
                        domain: spec.asn,
                        host: 0,
                    };
                    let decision = {
                        let lookup = LocalLookup { speaker: &speaker };
                        bgmp.forward(Some(Target::Migp), source, group, &lookup)
                    };
                    dispatch_data(
                        decision,
                        Some(Target::Migp),
                        source,
                        group,
                        id,
                        &writers,
                        &members,
                        &mut delivered,
                    )
                    .await;
                }
                Cmd::Query(tx) => {
                    let grib = speaker
                        .rib()
                        .group_routes()
                        .map(|(p, r)| (*p, r.origin_asn().unwrap_or(0)))
                        .collect();
                    let star_groups = bgmp.table().star_entries().map(|(p, _)| p.base()).collect();
                    let _ = tx.send(Snapshot {
                        grib,
                        star_groups,
                        delivered: delivered.clone(),
                        peers_up: writers.keys().copied().collect(),
                    });
                }
                Cmd::Shutdown => break,
            },
        }
    }
}

/// Fans BGMP actions out to peers; local-domain actions resolve against
/// the member set (the one-router domain's "MIGP").
async fn ship_bgmp(
    actions: Vec<BgmpAction>,
    writers: &BTreeMap<RouterId, mpsc::Sender<WireMsg>>,
    _members: &mut BTreeSet<McastAddr>,
) {
    for a in actions {
        match a {
            BgmpAction::SendToPeer { to, msg } => {
                if let Some(w) = writers.get(&to) {
                    let _ = w.send(WireMsg::Bgmp(msg)).await;
                }
            }
            // Single-router domains have no interior to subscribe.
            BgmpAction::MigpSubscribe(_)
            | BgmpAction::MigpUnsubscribe(_)
            | BgmpAction::JoinViaMigp { .. }
            | BgmpAction::PruneViaMigp { .. }
            | BgmpAction::SourceJoinViaMigp { .. }
            | BgmpAction::SourcePruneViaMigp { .. } => {}
        }
    }
}

#[allow(clippy::too_many_arguments)]
async fn dispatch_data(
    decision: ForwardDecision,
    _from: Option<Target>,
    source: SourceId,
    group: McastAddr,
    id: u64,
    writers: &BTreeMap<RouterId, mpsc::Sender<WireMsg>>,
    members: &BTreeSet<McastAddr>,
    delivered: &mut Vec<(u64, McastAddr)>,
) {
    match decision {
        ForwardDecision::Targets(targets) => {
            for t in targets {
                match t {
                    Target::Peer(p) => {
                        if let Some(w) = writers.get(&p) {
                            let _ = w.send(WireMsg::Data { source, group, id }).await;
                        }
                    }
                    Target::Migp => {
                        if members.contains(&group) {
                            delivered.push((id, group));
                        }
                    }
                }
            }
        }
        ForwardDecision::TowardRoot(NextHop::ExternalPeer(p)) => {
            if let Some(w) = writers.get(&p) {
                let _ = w.send(WireMsg::Data { source, group, id }).await;
            }
        }
        ForwardDecision::TowardRoot(NextHop::Local) => {
            if members.contains(&group) {
                delivered.push((id, group));
            }
        }
        ForwardDecision::TowardRoot(NextHop::Internal { .. }) | ForwardDecision::Drop => {}
    }
}

/// Runs one TCP connection: handshake, then pump frames both ways.
async fn handle_conn(
    sock: TcpStream,
    dial_to: Option<RouterId>,
    my_id: RouterId,
    ev_tx: mpsc::Sender<Event>,
) {
    let (mut rd, mut wr) = sock.into_split();
    // Handshake: dialer sends Hello first; acceptor learns the peer id
    // from it and answers with its own Hello.
    let peer_id = if let Some(_peer) = dial_to {
        if write_frame(&mut wr, &WireMsg::Hello { router: my_id })
            .await
            .is_err()
        {
            return;
        }
        match read_frame(&mut rd).await {
            Ok(WireMsg::Hello { router }) => router,
            _ => return,
        }
    } else {
        match read_frame(&mut rd).await {
            Ok(WireMsg::Hello { router }) => {
                if write_frame(&mut wr, &WireMsg::Hello { router: my_id })
                    .await
                    .is_err()
                {
                    return;
                }
                router
            }
            _ => return,
        }
    };
    debug_assert!(dial_to.is_none() || dial_to == Some(peer_id));

    // Writer pump.
    let (out_tx, mut out_rx) = mpsc::channel::<WireMsg>(1024);
    tokio::spawn(async move {
        while let Some(msg) = out_rx.recv().await {
            if write_frame(&mut wr, &msg).await.is_err() {
                break;
            }
        }
    });
    if ev_tx.send(Event::PeerUp(peer_id, out_tx)).await.is_err() {
        return;
    }
    // Reader pump.
    loop {
        match read_frame(&mut rd).await {
            Ok(msg) => {
                if ev_tx.send(Event::FromPeer(peer_id, msg)).await.is_err() {
                    break;
                }
            }
            Err(_) => {
                let _ = ev_tx.send(Event::PeerGone(peer_id)).await;
                break;
            }
        }
    }
}
