//! Convenience for standing up a small internet of router actors on
//! localhost.

use std::net::SocketAddr;

use bgp::{ExportPolicy, PeerConfig, PeerRel, RouterId};
use mcast_addr::Prefix;
use topology::{DomainGraph, Rel};

use crate::router_task::{spawn_router, RouterHandle, RouterSpec};

/// A running localhost internet: one router actor per domain.
pub struct ActorNet {
    /// Handles, indexed by `DomainId.0`.
    pub routers: Vec<RouterHandle>,
    /// Each domain's statically assigned group range.
    pub ranges: Vec<Prefix>,
}

/// Picks a free localhost port per router by binding ephemeral
/// listeners up front.
async fn free_addrs(n: usize) -> std::io::Result<Vec<SocketAddr>> {
    let mut addrs = Vec::with_capacity(n);
    let mut keep = Vec::new();
    for _ in 0..n {
        let l = tokio::net::TcpListener::bind("127.0.0.1:0").await?;
        addrs.push(l.local_addr()?);
        keep.push(l); // hold until all are chosen to avoid reuse
    }
    drop(keep);
    Ok(addrs)
}

impl ActorNet {
    /// Builds and starts one router actor per domain of `graph`, wiring
    /// TCP peerings along its edges, originating a static group range
    /// per domain.
    pub async fn start(graph: &DomainGraph, policy: ExportPolicy) -> std::io::Result<ActorNet> {
        let n = graph.len();
        let addrs = free_addrs(n).await?;
        let bits = (usize::BITS - (n.max(1) - 1).leading_zeros()).max(1) as u8;
        let ranges: Vec<Prefix> = Prefix::MULTICAST.subprefixes(4 + bits).take(n).collect();

        let mut handles = Vec::with_capacity(n);
        for d in graph.domains() {
            let id = d.0 as RouterId + 1;
            let peers = graph
                .neighbors(d)
                .iter()
                .map(|&(nb, rel)| {
                    let peer_id = nb.0 as RouterId + 1;
                    let rel = match rel {
                        Rel::Provider => PeerRel::Provider,
                        Rel::Customer => PeerRel::Customer,
                        Rel::Peer => PeerRel::Peer,
                    };
                    let dial = id > peer_id; // higher id dials
                    (
                        PeerConfig {
                            router: peer_id,
                            asn: nb.0 as u32 + 1,
                            rel,
                        },
                        addrs[nb.0],
                        dial,
                    )
                })
                .collect();
            let spec = RouterSpec {
                id,
                asn: d.0 as u32 + 1,
                listen: addrs[d.0],
                peers,
                policy,
            };
            handles.push(spawn_router(spec).await?);
        }

        let net = ActorNet {
            routers: handles,
            ranges,
        };
        net.wait_peers(graph).await;
        // Originate ranges once sessions are up.
        for (i, h) in net.routers.iter().enumerate() {
            let _ = h
                .cmd
                .send(crate::router_task::Cmd::OriginateGroup(net.ranges[i]))
                .await;
        }
        Ok(net)
    }

    /// Waits until every router sees all its peers connected.
    async fn wait_peers(&self, graph: &DomainGraph) {
        for _ in 0..200 {
            let mut all_up = true;
            for (i, h) in self.routers.iter().enumerate() {
                let snap = h.snapshot().await;
                if snap.peers_up.len() < graph.degree(topology::DomainId(i)) {
                    all_up = false;
                    break;
                }
            }
            if all_up {
                return;
            }
            tokio::time::sleep(std::time::Duration::from_millis(20)).await;
        }
        panic!("actor peerings did not come up");
    }

    /// Polls until `check` passes on every router or the budget runs
    /// out (protocol convergence over real sockets is asynchronous).
    pub async fn wait_until<F>(&self, mut check: F) -> bool
    where
        F: FnMut(usize, &crate::router_task::Snapshot) -> bool,
    {
        for _ in 0..300 {
            let mut ok = true;
            for (i, h) in self.routers.iter().enumerate() {
                let snap = h.snapshot().await;
                if !check(i, &snap) {
                    ok = false;
                    break;
                }
            }
            if ok {
                return true;
            }
            tokio::time::sleep(std::time::Duration::from_millis(20)).await;
        }
        false
    }

    /// Shuts every router down.
    pub async fn stop(self) {
        for h in self.routers {
            h.shutdown().await;
        }
    }
}
