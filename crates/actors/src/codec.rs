//! Length-delimited JSON framing over TCP.
//!
//! Each frame is a 4-byte big-endian length followed by a JSON-encoded
//! [`WireMsg`](crate::wire::WireMsg). Frames are capped to keep a
//! misbehaving peer from ballooning memory.

use bytes::{Buf, BufMut, BytesMut};
use tokio::io::{AsyncReadExt, AsyncWriteExt};

use crate::wire::WireMsg;

/// Upper bound on a single frame (control messages are tiny; this is
/// generous headroom).
pub const MAX_FRAME: usize = 1 << 20;

/// Errors from the codec.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// Peer sent an oversized frame.
    TooLarge(usize),
    /// Peer sent malformed JSON.
    Malformed(serde_json::Error),
    /// The connection closed.
    Closed,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "io: {e}"),
            CodecError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds cap"),
            CodecError::Malformed(e) => write!(f, "malformed frame: {e}"),
            CodecError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Encodes a message into a length-prefixed frame.
pub fn encode(msg: &WireMsg) -> BytesMut {
    // lint:allow(panicky-decode) — encode side: serializes a locally-constructed WireMsg, which is infallible; no peer-controlled input reaches this expect
    let body = serde_json::to_vec(msg).expect("WireMsg serializes");
    let mut buf = BytesMut::with_capacity(4 + body.len());
    buf.put_u32(body.len() as u32);
    buf.put_slice(&body);
    buf
}

/// Writes one frame.
pub async fn write_frame<W: AsyncWriteExt + Unpin>(
    w: &mut W,
    msg: &WireMsg,
) -> Result<(), CodecError> {
    let buf = encode(msg);
    w.write_all(&buf).await?;
    Ok(())
}

/// Reads one frame.
pub async fn read_frame<R: AsyncReadExt + Unpin>(r: &mut R) -> Result<WireMsg, CodecError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf).await {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Err(CodecError::Closed),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(CodecError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).await?;
    serde_json::from_slice(&body).map_err(CodecError::Malformed)
}

/// Decodes a frame from a buffer (sans-io variant for tests).
pub fn decode_buf(buf: &mut BytesMut) -> Result<Option<WireMsg>, CodecError> {
    let Some(header) = buf.get(0..4) else {
        return Ok(None);
    };
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(header);
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(CodecError::TooLarge(len));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    buf.advance(4);
    let body = buf.split_to(len);
    serde_json::from_slice(&body)
        .map(Some)
        .map_err(CodecError::Malformed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_addr::McastAddr;

    #[test]
    fn encode_decode_buffer() {
        let m = WireMsg::Bgmp(bgmp::BgmpMsg::Join(McastAddr(0xE000_0005)));
        let mut buf = encode(&m);
        // Partial reads yield None until the frame is complete.
        let mut partial = BytesMut::from(&buf[..3]);
        assert!(matches!(decode_buf(&mut partial), Ok(None)));
        let out = decode_buf(&mut buf).unwrap().unwrap();
        assert!(matches!(out, WireMsg::Bgmp(bgmp::BgmpMsg::Join(_))));
        assert!(buf.is_empty());
    }

    #[test]
    fn garbage_json_body_is_malformed_not_panic() {
        // A peer can put arbitrary bytes in a well-framed body; decode
        // must surface a typed error.
        let body = b"{\"definitely\": not json";
        let mut buf = BytesMut::new();
        buf.put_u32(body.len() as u32);
        buf.put_slice(body);
        assert!(matches!(
            decode_buf(&mut buf),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_header_yields_none_not_panic() {
        // Fewer than 4 header bytes: wait for more input, never index
        // past the end.
        for n in 0..4usize {
            let mut buf = BytesMut::from(&[0xFFu8; 4][..n]);
            assert!(matches!(decode_buf(&mut buf), Ok(None)), "n={n}");
        }
    }

    #[tokio::test]
    async fn malformed_frame_over_socket_is_typed_error() {
        let (mut a, mut b) = tokio::io::duplex(4096);
        let body = b"\x00\x01\x02 not json at all";
        let mut frame = BytesMut::new();
        frame.put_u32(body.len() as u32);
        frame.put_slice(body);
        a.write_all(&frame).await.unwrap();
        assert!(matches!(
            read_frame(&mut b).await,
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32((MAX_FRAME + 1) as u32);
        buf.put_slice(&[0u8; 8]);
        assert!(matches!(decode_buf(&mut buf), Err(CodecError::TooLarge(_))));
    }

    #[tokio::test]
    async fn roundtrip_over_duplex() {
        let (mut a, mut b) = tokio::io::duplex(4096);
        let m = WireMsg::Hello { router: 42 };
        write_frame(&mut a, &m).await.unwrap();
        let got = read_frame(&mut b).await.unwrap();
        assert!(matches!(got, WireMsg::Hello { router: 42 }));
        drop(a);
        assert!(matches!(read_frame(&mut b).await, Err(CodecError::Closed)));
    }
}
