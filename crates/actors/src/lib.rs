//! Tokio async-actor deployment of the MASC/BGMP protocol engines.
//!
//! The calibration target for this reproduction is "async actors for
//! border routers": each border router runs as a tokio task, speaking
//! the same sans-io BGP and BGMP engines the deterministic simulator
//! drives — but over real TCP sessions on localhost, with the
//! persistent peering connections §5.2 of the paper describes.
//!
//! * [`wire`] — the multiplexed message enum;
//! * [`codec`] — length-delimited JSON framing;
//! * [`router_task`] — the per-router actor: accept/dial loops,
//!   session pumps, command channel;
//! * [`harness`] — building a localhost internet from a
//!   [`topology::DomainGraph`].

pub mod codec;
pub mod harness;
pub mod router_task;
pub mod wire;

pub use harness::ActorNet;
pub use router_task::{spawn_router, Cmd, RouterHandle, RouterSpec, Snapshot};
pub use wire::WireMsg;
