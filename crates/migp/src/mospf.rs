//! MOSPF-lite: link-state membership flooding with per-source
//! shortest-path trees.
//!
//! Every router knows all membership via flooded group-membership LSAs
//! (§1: "MOSPF floods group membership information to all the
//! routers"), so data is forwarded along a shortest-path tree computed
//! from the packet's entry point. Any entry is accepted: the tree is
//! recomputed per (source, group), which is exactly MOSPF's cost.

use mcast_addr::McastAddr;

use crate::api::{Delivery, Migp, MigpEvent};
use crate::domain_net::{DomainNet, LocalRouter};
use crate::membership::Membership;
use crate::tree_util::spanning_edges;

/// A MOSPF-lite instance for one domain.
#[derive(Debug)]
pub struct Mospf {
    net: DomainNet,
    members: Membership,
    /// Count of (entry, group) tree computations — MOSPF's
    /// characteristic overhead, surfaced for the ablation.
    pub tree_computations: std::cell::Cell<u64>,
}

impl Mospf {
    /// Creates an instance.
    pub fn new(net: DomainNet) -> Self {
        Mospf {
            net,
            members: Membership::new(),
            tree_computations: std::cell::Cell::new(0),
        }
    }
}

impl Migp for Mospf {
    fn name(&self) -> &'static str {
        "MOSPF"
    }

    fn net(&self) -> &DomainNet {
        &self.net
    }

    fn membership(&self) -> &Membership {
        &self.members
    }

    fn membership_mut(&mut self) -> &mut Membership {
        &mut self.members
    }

    fn host_join(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent> {
        self.members.join(r, g)
    }

    fn host_leave(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent> {
        self.members.leave(r, g)
    }

    fn border_subscribe(&mut self, b: LocalRouter, g: McastAddr) {
        self.members.subscribe(b, g);
    }

    fn border_unsubscribe(&mut self, b: LocalRouter, g: McastAddr) {
        self.members.unsubscribe(b, g);
    }

    fn has_members(&self, g: McastAddr) -> bool {
        self.members.has_members(g)
    }

    fn deliver(
        &self,
        entry: LocalRouter,
        g: McastAddr,
        expected_entry: Option<LocalRouter>,
    ) -> Delivery {
        self.tree_computations.set(self.tree_computations.get() + 1);
        // Transit data (an expected entry exists) is not echoed back
        // to its entry border; locally sourced data reaches them all.
        let exclude = expected_entry.map(|_| entry);
        let (member_routers, borders) = self.members.receivers(g, exclude);
        let all: Vec<LocalRouter> = member_routers
            .iter()
            .chain(borders.iter())
            .copied()
            .collect();
        let edges = spanning_edges(&self.net, entry, &all);
        Delivery::Delivered {
            member_routers,
            borders,
            hops: edges.len() as u32,
        }
    }

    fn members_of(&self, g: McastAddr) -> Vec<LocalRouter> {
        self.members.members_of(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(x: u32) -> McastAddr {
        McastAddr(0xE000_0000 | x)
    }

    #[test]
    fn spt_delivery_and_computation_count() {
        let mut m = Mospf::new(DomainNet::star(4, 2));
        m.host_join(3, g(1));
        m.host_join(4, g(1));
        match m.deliver(1, g(1), Some(2)) {
            Delivery::Delivered {
                member_routers,
                hops,
                ..
            } => {
                assert_eq!(member_routers, vec![3, 4]);
                assert_eq!(hops, 3); // 1-0, 0-3, 0-4
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.tree_computations.get(), 1);
    }
}
