//! The MIGP abstraction: what BGMP requires of an intra-domain
//! multicast routing protocol.
//!
//! §3 of the paper makes *MIGP independence* a requirement: each domain
//! chooses its own protocol, and BGMP interacts with it only through a
//! narrow interface — membership notifications toward the group's best
//! exit router, data delivery between hosts and border routers, and
//! (for source-rooted protocols) RPF entry constraints that force
//! encapsulation between border routers (§5.3).

use mcast_addr::McastAddr;

use crate::domain_net::{DomainNet, LocalRouter};
use crate::membership::Membership;

/// Events the MIGP reports upward to the BGMP component (the paper's
/// Domain-Wide Report role, [22]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigpEvent {
    /// The domain gained its first member of the group: the best exit
    /// router's BGMP component should join the inter-domain tree.
    FirstMember(McastAddr),
    /// The domain lost its last member: BGMP should prune.
    LastMemberLeft(McastAddr),
}

/// Result of injecting a data packet into the domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// The packet was delivered along the protocol's tree.
    Delivered {
        /// Routers with member hosts that received a copy.
        member_routers: Vec<LocalRouter>,
        /// Border routers subscribed as BGMP child targets that
        /// received a copy (the entry router is never echoed back).
        borders: Vec<LocalRouter>,
        /// Internal hops traversed (tree edge count), for the
        /// intra-domain ablation.
        hops: u32,
    },
    /// A source-rooted protocol rejected the packet: it entered at the
    /// wrong border router for this source (internal RPF checks toward
    /// the source would drop it, §5.3). The host must encapsulate to
    /// `required_entry` instead.
    RpfReject {
        /// The border router data for this source must enter through.
        required_entry: LocalRouter,
    },
}

/// An intra-domain multicast routing protocol instance for one domain.
///
/// Implementations are deterministic and synchronous: the surrounding
/// simulation provides timing; the MIGP computes trees and membership
/// directly (protocol chatter inside domains is abstracted away, since
/// the paper measures only inter-domain behaviour).
pub trait Migp: Send {
    /// Protocol name for reports.
    fn name(&self) -> &'static str;

    /// The domain's router graph.
    fn net(&self) -> &DomainNet;

    /// A host attached to `r` joins `g`. Returns membership events.
    fn host_join(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent>;

    /// A host attached to `r` leaves `g`. Returns membership events.
    fn host_leave(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent>;

    /// Border router `b` subscribes to `g`'s data (it has downstream
    /// BGMP child targets).
    fn border_subscribe(&mut self, b: LocalRouter, g: McastAddr);

    /// Border router `b` unsubscribes from `g`.
    fn border_unsubscribe(&mut self, b: LocalRouter, g: McastAddr);

    /// Does the domain currently have any member of `g`?
    fn has_members(&self, g: McastAddr) -> bool;

    /// Injects a data packet for `g` at router `entry` (a border
    /// router for transit traffic, or any router for a local sender).
    ///
    /// `expected_entry` is the border router the domain's unicast
    /// routing considers the best exit toward the packet's source
    /// (None for locally sourced packets). Source-rooted protocols
    /// reject mismatched entries with [`Delivery::RpfReject`].
    fn deliver(
        &self,
        entry: LocalRouter,
        g: McastAddr,
        expected_entry: Option<LocalRouter>,
    ) -> Delivery;

    /// Member routers of `g` (diagnostics).
    fn members_of(&self, g: McastAddr) -> Vec<LocalRouter>;

    /// The protocol's membership/subscription state, for checkpointing.
    /// Trees are recomputed from the domain graph on demand, so this is
    /// the only dynamic state a MIGP carries.
    fn membership(&self) -> &Membership;

    /// Mutable membership state, for restore.
    fn membership_mut(&mut self) -> &mut Membership;
}

/// Which MIGP a domain runs — constructor-style selector used by the
/// integrated architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigpKind {
    /// DVMRP: source-rooted reverse shortest-path trees, flood/prune,
    /// strict RPF (rejects wrong-entry transit data).
    Dvmrp,
    /// PIM Dense Mode: like DVMRP operationally.
    PimDm,
    /// PIM Sparse Mode: unidirectional shared tree rooted at an RP.
    PimSm,
    /// Core Based Trees: bidirectional shared tree around a core.
    Cbt,
    /// MOSPF-lite: membership flooding + per-source shortest-path
    /// trees, strict RPF.
    Mospf,
}

impl MigpKind {
    /// All kinds, for sweeps.
    pub const ALL: [MigpKind; 5] = [
        MigpKind::Dvmrp,
        MigpKind::PimDm,
        MigpKind::PimSm,
        MigpKind::Cbt,
        MigpKind::Mospf,
    ];

    /// Instantiates the protocol over a domain graph.
    pub fn build(self, net: DomainNet) -> Box<dyn Migp> {
        match self {
            MigpKind::Dvmrp => Box::new(crate::dvmrp::Dvmrp::new(net, "DVMRP")),
            MigpKind::PimDm => Box::new(crate::dvmrp::Dvmrp::new(net, "PIM-DM")),
            MigpKind::PimSm => Box::new(crate::pim_sm::PimSm::new(net)),
            MigpKind::Cbt => Box::new(crate::cbt::Cbt::new(net)),
            MigpKind::Mospf => Box::new(crate::mospf::Mospf::new(net)),
        }
    }
}
