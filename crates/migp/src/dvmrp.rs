//! DVMRP / PIM-DM: source-rooted reverse shortest-path trees with
//! flood-and-prune semantics and strict RPF.
//!
//! Operationally the two protocols behave the same for our purposes
//! (§2 of the paper groups them as broadcast-and-prune): data for a
//! group is delivered along a shortest-path tree rooted at the entry
//! point, and a packet arriving from an external source at any border
//! router other than the one internal RPF checks expect is dropped —
//! the situation that forces BGMP's encapsulation and source-specific
//! branches (§5.3, the domain-F example).

use mcast_addr::McastAddr;

use crate::api::{Delivery, Migp, MigpEvent};
use crate::domain_net::{DomainNet, LocalRouter};
use crate::membership::Membership;
use crate::tree_util::spanning_edges;

/// A DVMRP (or PIM-DM) instance for one domain.
#[derive(Debug)]
pub struct Dvmrp {
    net: DomainNet,
    name: &'static str,
    members: Membership,
}

impl Dvmrp {
    /// Creates an instance; `name` distinguishes DVMRP from PIM-DM in
    /// reports.
    pub fn new(net: DomainNet, name: &'static str) -> Self {
        Dvmrp {
            net,
            name,
            members: Membership::new(),
        }
    }
}

impl Migp for Dvmrp {
    fn name(&self) -> &'static str {
        self.name
    }

    fn net(&self) -> &DomainNet {
        &self.net
    }

    fn membership(&self) -> &Membership {
        &self.members
    }

    fn membership_mut(&mut self) -> &mut Membership {
        &mut self.members
    }

    fn host_join(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent> {
        self.members.join(r, g)
    }

    fn host_leave(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent> {
        self.members.leave(r, g)
    }

    fn border_subscribe(&mut self, b: LocalRouter, g: McastAddr) {
        self.members.subscribe(b, g);
    }

    fn border_unsubscribe(&mut self, b: LocalRouter, g: McastAddr) {
        self.members.unsubscribe(b, g);
    }

    fn has_members(&self, g: McastAddr) -> bool {
        self.members.has_members(g)
    }

    fn deliver(
        &self,
        entry: LocalRouter,
        g: McastAddr,
        expected_entry: Option<LocalRouter>,
    ) -> Delivery {
        // Strict RPF: transit data must enter where unicast routing
        // toward the source exits (§5.3: "internal routers will only
        // accept packets from a source which they receive from their
        // neighbor towards that source").
        if let Some(e) = expected_entry {
            if e != entry {
                return Delivery::RpfReject { required_entry: e };
            }
        }
        // Transit data (an expected entry exists) is not echoed back
        // to its entry border; locally sourced data reaches them all.
        let exclude = expected_entry.map(|_| entry);
        let (member_routers, borders) = self.members.receivers(g, exclude);
        let all: Vec<LocalRouter> = member_routers
            .iter()
            .chain(borders.iter())
            .copied()
            .collect();
        let edges = spanning_edges(&self.net, entry, &all);
        Delivery::Delivered {
            member_routers,
            borders,
            hops: edges.len() as u32,
        }
    }

    fn members_of(&self, g: McastAddr) -> Vec<LocalRouter> {
        self.members.members_of(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(x: u32) -> McastAddr {
        McastAddr(0xE000_0000 | x)
    }

    #[test]
    fn delivery_along_source_tree() {
        let mut d = Dvmrp::new(DomainNet::line(5), "DVMRP");
        assert_eq!(d.host_join(2, g(1)), vec![MigpEvent::FirstMember(g(1))]);
        d.host_join(4, g(1));
        d.border_subscribe(0, g(1));
        // Inject at border 0 (the expected entry).
        match d.deliver(0, g(1), Some(0)) {
            Delivery::Delivered {
                member_routers,
                borders,
                hops,
            } => {
                assert_eq!(member_routers, vec![2, 4]);
                assert!(borders.is_empty(), "entry not echoed back");
                assert_eq!(hops, 4);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rpf_reject_forces_encapsulation() {
        let mut d = Dvmrp::new(DomainNet::line(4), "DVMRP");
        d.host_join(1, g(1));
        // Data enters at border 3 but unicast routing toward the
        // source exits at border 0.
        match d.deliver(3, g(1), Some(0)) {
            Delivery::RpfReject { required_entry } => assert_eq!(required_entry, 0),
            other => panic!("expected RpfReject, got {other:?}"),
        }
        // Locally sourced data (no expected entry) is fine anywhere.
        assert!(matches!(
            d.deliver(3, g(1), None),
            Delivery::Delivered { .. }
        ));
    }

    #[test]
    fn no_members_no_hops() {
        let d = Dvmrp::new(DomainNet::line(4), "PIM-DM");
        assert_eq!(d.name(), "PIM-DM");
        match d.deliver(0, g(7), None) {
            Delivery::Delivered {
                member_routers,
                borders,
                hops,
            } => {
                assert!(member_routers.is_empty() && borders.is_empty());
                assert_eq!(hops, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
