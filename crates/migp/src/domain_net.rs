//! Intra-domain router topology.
//!
//! Domains internally run their own (Multicast Interior Gateway)
//! protocol over a small router graph. Border routers connect to other
//! domains; internal routers attach hosts. The paper measures nothing
//! inside domains — inter-domain hop counts are the metric — but the
//! MIGP interactions (Domain-Wide Reports, RPF entry checks, transit
//! between border routers) need a real graph to be meaningful.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of a router within one domain.
pub type LocalRouter = usize;

/// A small connected undirected router graph with a designated set of
/// border routers.
#[derive(Debug, Clone)]
pub struct DomainNet {
    adj: Vec<Vec<LocalRouter>>,
    border: Vec<LocalRouter>,
}

impl DomainNet {
    /// A single-router domain (its one router is the border router).
    pub fn trivial() -> Self {
        DomainNet {
            adj: vec![vec![]],
            border: vec![0],
        }
    }

    /// A line of `n` routers; the two ends are border routers.
    pub fn line(n: usize) -> Self {
        assert!(n >= 1);
        let mut adj = vec![Vec::new(); n];
        for i in 1..n {
            adj[i - 1].push(i);
            adj[i].push(i - 1);
        }
        let border = if n == 1 { vec![0] } else { vec![0, n - 1] };
        DomainNet { adj, border }
    }

    /// A star: router 0 at the center, leaves around it; the first
    /// `borders` leaves are border routers.
    pub fn star(leaves: usize, borders: usize) -> Self {
        assert!(borders <= leaves);
        let n = leaves + 1;
        let mut adj = vec![Vec::new(); n];
        for i in 1..n {
            adj[0].push(i);
            adj[i].push(0);
        }
        DomainNet {
            adj,
            border: (1..=borders.max(1).min(leaves)).collect(),
        }
    }

    /// A connected random graph: a random spanning tree plus `extra`
    /// random edges; the first `borders` routers are border routers.
    pub fn random(n: usize, borders: usize, extra: usize, seed: u64) -> Self {
        assert!(n >= 1 && borders >= 1 && borders <= n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adj = vec![Vec::new(); n];
        for i in 1..n {
            let j = rng.gen_range(0..i);
            adj[i].push(j);
            adj[j].push(i);
        }
        let mut added = 0;
        let mut guard = 0;
        while added < extra && n > 2 && guard < 100 * extra.max(1) {
            guard += 1;
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b && !adj[a].contains(&b) {
                adj[a].push(b);
                adj[b].push(a);
                added += 1;
            }
        }
        DomainNet {
            adj,
            border: (0..borders).collect(),
        }
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the domain has no routers (never true for constructors).
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// The border routers.
    pub fn border_routers(&self) -> &[LocalRouter] {
        &self.border
    }

    /// Is `r` a border router?
    pub fn is_border(&self, r: LocalRouter) -> bool {
        self.border.contains(&r)
    }

    /// Neighbors of `r`.
    pub fn neighbors(&self, r: LocalRouter) -> &[LocalRouter] {
        &self.adj[r]
    }

    /// BFS distances from `src` (all routers reachable by
    /// construction).
    pub fn dists_from(&self, src: LocalRouter) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        let mut q = std::collections::VecDeque::new();
        dist[src] = 0;
        q.push_back(src);
        while let Some(r) = q.pop_front() {
            for &nb in &self.adj[r] {
                if dist[nb] == u32::MAX {
                    dist[nb] = dist[r] + 1;
                    q.push_back(nb);
                }
            }
        }
        dist
    }

    /// The parent pointers of a BFS tree rooted at `root` (toward the
    /// root), deterministic in adjacency order.
    pub fn bfs_parents(&self, root: LocalRouter) -> Vec<Option<LocalRouter>> {
        let mut parent = vec![None; self.len()];
        let mut seen = vec![false; self.len()];
        let mut q = std::collections::VecDeque::new();
        seen[root] = true;
        q.push_back(root);
        while let Some(r) = q.pop_front() {
            for &nb in &self.adj[r] {
                if !seen[nb] {
                    seen[nb] = true;
                    parent[nb] = Some(r);
                    q.push_back(nb);
                }
            }
        }
        parent
    }

    /// The first hop from `from` on a shortest path toward `to`
    /// (`None` if `from == to`).
    pub fn next_hop_toward(&self, from: LocalRouter, to: LocalRouter) -> Option<LocalRouter> {
        if from == to {
            return None;
        }
        let parents = self.bfs_parents(to);
        parents[from]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_shape() {
        let d = DomainNet::line(4);
        assert_eq!(d.len(), 4);
        assert_eq!(d.border_routers(), &[0, 3]);
        assert_eq!(d.dists_from(0), vec![0, 1, 2, 3]);
        assert_eq!(d.next_hop_toward(0, 3), Some(1));
        assert!(d.is_border(3));
        assert!(!d.is_border(1));
    }

    #[test]
    fn star_shape() {
        let d = DomainNet::star(5, 2);
        assert_eq!(d.len(), 6);
        assert_eq!(d.border_routers(), &[1, 2]);
        assert_eq!(d.dists_from(1), vec![1, 0, 2, 2, 2, 2]);
    }

    #[test]
    fn trivial_domain() {
        let d = DomainNet::trivial();
        assert_eq!(d.len(), 1);
        assert_eq!(d.border_routers(), &[0]);
        assert_eq!(d.next_hop_toward(0, 0), None);
    }

    #[test]
    fn random_is_connected_and_deterministic() {
        let a = DomainNet::random(12, 3, 4, 9);
        let b = DomainNet::random(12, 3, 4, 9);
        for r in 0..12 {
            assert_eq!(a.neighbors(r), b.neighbors(r));
            assert!(a.dists_from(0)[r] != u32::MAX, "router {r} unreachable");
        }
        assert_eq!(a.border_routers().len(), 3);
    }

    #[test]
    fn bfs_parents_lead_to_root() {
        let d = DomainNet::random(10, 2, 3, 4);
        let parents = d.bfs_parents(0);
        for r in 1..10 {
            let mut cur = r;
            let mut steps = 0;
            while let Some(p) = parents[cur] {
                cur = p;
                steps += 1;
                assert!(steps <= 10);
            }
            assert_eq!(cur, 0);
        }
    }
}
