//! Intra-domain multicast routing protocols (MIGPs).
//!
//! BGMP is MIGP-independent (§3): any multicast routing protocol can
//! run inside a domain. This crate provides the five protocols the
//! paper discusses, behind a single [`api::Migp`] trait, over small
//! intra-domain router graphs:
//!
//! * [`dvmrp`] — DVMRP and PIM-DM (broadcast-and-prune, strict RPF:
//!   these are the protocols that force BGMP's encapsulation and
//!   source-specific branches, §5.3);
//! * [`pim_sm`] — PIM-SM (unidirectional RP tree);
//! * [`cbt`] — CBT (bidirectional core tree);
//! * [`mospf`] — MOSPF-lite (membership flooding + per-source SPTs).

pub mod api;
pub mod cbt;
pub mod domain_net;
pub mod dvmrp;
pub mod membership;
pub mod mospf;
pub mod pim_sm;
pub mod tree_util;

pub use api::{Delivery, Migp, MigpEvent, MigpKind};
pub use domain_net::{DomainNet, LocalRouter};
