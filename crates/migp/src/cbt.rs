//! CBT: a bidirectional shared tree around a core router.
//!
//! Unlike PIM-SM's unidirectional tree, data entering anywhere flows
//! *along* the tree in both directions (§5.2 credits CBT as the model
//! for BGMP's bidirectional trees): packets travel from the entry
//! point toward the core only until they meet the tree, then reach
//! every on-tree receiver without a detour through the core.

use mcast_addr::McastAddr;

use crate::api::{Delivery, Migp, MigpEvent};
use crate::domain_net::{DomainNet, LocalRouter};
use crate::membership::Membership;
use crate::tree_util::{path_to_tree, spanning_edges, tree_nodes};

/// A CBT instance for one domain.
#[derive(Debug)]
pub struct Cbt {
    net: DomainNet,
    members: Membership,
}

impl Cbt {
    /// Creates an instance.
    pub fn new(net: DomainNet) -> Self {
        Cbt {
            net,
            members: Membership::new(),
        }
    }

    /// The core router for a group (hash over routers, offset from
    /// PIM-SM's RP choice so the two protocols differ in tests).
    pub fn core_of(&self, g: McastAddr) -> LocalRouter {
        (g.0 as usize).wrapping_mul(0x85EB_CA6B).wrapping_add(1) % self.net.len()
    }
}

impl Migp for Cbt {
    fn name(&self) -> &'static str {
        "CBT"
    }

    fn net(&self) -> &DomainNet {
        &self.net
    }

    fn membership(&self) -> &Membership {
        &self.members
    }

    fn membership_mut(&mut self) -> &mut Membership {
        &mut self.members
    }

    fn host_join(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent> {
        self.members.join(r, g)
    }

    fn host_leave(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent> {
        self.members.leave(r, g)
    }

    fn border_subscribe(&mut self, b: LocalRouter, g: McastAddr) {
        self.members.subscribe(b, g);
    }

    fn border_unsubscribe(&mut self, b: LocalRouter, g: McastAddr) {
        self.members.unsubscribe(b, g);
    }

    fn has_members(&self, g: McastAddr) -> bool {
        self.members.has_members(g)
    }

    fn deliver(
        &self,
        entry: LocalRouter,
        g: McastAddr,
        expected_entry: Option<LocalRouter>,
    ) -> Delivery {
        let core = self.core_of(g);
        // Transit data (an expected entry exists) is not echoed back
        // to its entry border; locally sourced data reaches them all.
        let exclude = expected_entry.map(|_| entry);
        let (member_routers, borders) = self.members.receivers(g, exclude);
        let all: Vec<LocalRouter> = member_routers
            .iter()
            .chain(borders.iter())
            .copied()
            .collect();
        let tree = spanning_edges(&self.net, core, &all);
        let nodes = tree_nodes(core, &tree);
        // Bidirectional: data only walks toward the core until it
        // meets the tree.
        let approach = path_to_tree(&self.net, core, entry, &nodes);
        Delivery::Delivered {
            member_routers,
            borders,
            hops: (tree.len() + approach.len()) as u32,
        }
    }

    fn members_of(&self, g: McastAddr) -> Vec<LocalRouter> {
        self.members.members_of(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(x: u32) -> McastAddr {
        McastAddr(0xE000_0000 | x)
    }

    /// On a line with the core far away, CBT beats PIM-SM because data
    /// does not detour through the core.
    #[test]
    fn bidirectional_avoids_core_detour() {
        let net = DomainNet::line(9);
        let mut cbt = Cbt::new(net.clone());
        let mut pim = crate::pim_sm::PimSm::new(net);
        // Find a group whose core/RP is near one end.
        let grp = (0..200)
            .map(g)
            .find(|x| cbt.core_of(*x) == 8 && pim.rp_of(*x) == 8)
            .or_else(|| {
                (0..200)
                    .map(g)
                    .find(|x| cbt.core_of(*x) >= 6 && pim.rp_of(*x) >= 6)
            });
        let Some(grp) = grp else {
            // Hash layout made the scenario unavailable; skip silently
            // (other tests cover the mechanics).
            return;
        };
        cbt.host_join(1, grp);
        pim.host_join(1, grp);
        let ch = match cbt.deliver(0, grp, None) {
            Delivery::Delivered { hops, .. } => hops,
            _ => unreachable!(),
        };
        let ph = match pim.deliver(0, grp, None) {
            Delivery::Delivered { hops, .. } => hops,
            _ => unreachable!(),
        };
        assert!(ch < ph, "CBT {ch} must beat PIM-SM {ph} here");
    }

    #[test]
    fn entry_on_tree_adds_no_approach() {
        let mut cbt = Cbt::new(DomainNet::line(5));
        let grp = g(1);
        let core = cbt.core_of(grp);
        cbt.host_join(core, grp);
        match cbt.deliver(core, grp, None) {
            Delivery::Delivered {
                member_routers,
                hops,
                ..
            } => {
                // The member at the entry router gets its local copy
                // without any tree hops.
                assert_eq!(member_routers, vec![core]);
                assert_eq!(hops, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
