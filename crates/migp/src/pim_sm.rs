//! PIM Sparse Mode: a unidirectional shared tree rooted at a
//! Rendezvous Point.
//!
//! The RP for a group is chosen by hashing the group address over the
//! domain's routers (§5.1: "typically by hashing the group address
//! over the set of routers"). Data entering anywhere is register-
//! tunneled to the RP and flows down the shared tree, so any entry
//! router is acceptable (no RPF rejection) but paths include the
//! detour through the RP.

use mcast_addr::McastAddr;

use crate::api::{Delivery, Migp, MigpEvent};
use crate::domain_net::{DomainNet, LocalRouter};
use crate::membership::Membership;
use crate::tree_util::spanning_edges;

/// A PIM-SM instance for one domain.
#[derive(Debug)]
pub struct PimSm {
    net: DomainNet,
    members: Membership,
}

impl PimSm {
    /// Creates an instance.
    pub fn new(net: DomainNet) -> Self {
        PimSm {
            net,
            members: Membership::new(),
        }
    }

    /// The Rendezvous Point for a group (hash over routers).
    pub fn rp_of(&self, g: McastAddr) -> LocalRouter {
        (g.0 as usize).wrapping_mul(0x9E37_79B9) % self.net.len()
    }
}

impl Migp for PimSm {
    fn name(&self) -> &'static str {
        "PIM-SM"
    }

    fn net(&self) -> &DomainNet {
        &self.net
    }

    fn membership(&self) -> &Membership {
        &self.members
    }

    fn membership_mut(&mut self) -> &mut Membership {
        &mut self.members
    }

    fn host_join(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent> {
        self.members.join(r, g)
    }

    fn host_leave(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent> {
        self.members.leave(r, g)
    }

    fn border_subscribe(&mut self, b: LocalRouter, g: McastAddr) {
        self.members.subscribe(b, g);
    }

    fn border_unsubscribe(&mut self, b: LocalRouter, g: McastAddr) {
        self.members.unsubscribe(b, g);
    }

    fn has_members(&self, g: McastAddr) -> bool {
        self.members.has_members(g)
    }

    fn deliver(
        &self,
        entry: LocalRouter,
        g: McastAddr,
        expected_entry: Option<LocalRouter>,
    ) -> Delivery {
        let rp = self.rp_of(g);
        // Transit data (an expected entry exists) is not echoed back
        // to its entry border; locally sourced data reaches them all.
        let exclude = expected_entry.map(|_| entry);
        let (member_routers, borders) = self.members.receivers(g, exclude);
        let all: Vec<LocalRouter> = member_routers
            .iter()
            .chain(borders.iter())
            .copied()
            .collect();
        // Register leg entry→RP, then the shared tree RP→receivers.
        let register_hops = self.net.dists_from(entry)[rp];
        let tree = spanning_edges(&self.net, rp, &all);
        Delivery::Delivered {
            member_routers,
            borders,
            hops: register_hops + tree.len() as u32,
        }
    }

    fn members_of(&self, g: McastAddr) -> Vec<LocalRouter> {
        self.members.members_of(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(x: u32) -> McastAddr {
        McastAddr(0xE000_0000 | x)
    }

    #[test]
    fn any_entry_accepted_and_paths_go_via_rp() {
        let mut p = PimSm::new(DomainNet::line(5));
        p.host_join(4, g(3));
        let rp = p.rp_of(g(3));
        match p.deliver(0, g(3), Some(3)) {
            Delivery::Delivered {
                member_routers,
                hops,
                ..
            } => {
                assert_eq!(member_routers, vec![4]);
                // entry(0)→rp + rp→member(4) on a line.
                let expect = rp as u32 + (4 - rp) as u32;
                assert_eq!(hops, expect);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rp_is_deterministic_and_in_range() {
        let p = PimSm::new(DomainNet::random(9, 2, 3, 1));
        for x in 0..20 {
            let rp = p.rp_of(g(x));
            assert!(rp < 9);
            assert_eq!(rp, p.rp_of(g(x)));
        }
    }
}
