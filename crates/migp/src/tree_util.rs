//! Tree-construction helpers shared by the protocol implementations.

use std::collections::BTreeSet;

use crate::domain_net::{DomainNet, LocalRouter};

/// The union of shortest paths from each receiver to `root`, as a set
/// of undirected edges, using the deterministic BFS tree rooted at
/// `root`. Returns (edge set, per-receiver distance sum is not needed).
pub fn spanning_edges(
    net: &DomainNet,
    root: LocalRouter,
    receivers: &[LocalRouter],
) -> BTreeSet<(LocalRouter, LocalRouter)> {
    let parents = net.bfs_parents(root);
    let mut edges = BTreeSet::new();
    for &r in receivers {
        let mut cur = r;
        while let Some(p) = parents[cur] {
            let e = if cur < p { (cur, p) } else { (p, cur) };
            if !edges.insert(e) {
                break; // joined an existing branch
            }
            cur = p;
        }
    }
    edges
}

/// The node set touched by a set of edges plus the root.
pub fn tree_nodes(
    root: LocalRouter,
    edges: &BTreeSet<(LocalRouter, LocalRouter)>,
) -> BTreeSet<LocalRouter> {
    let mut nodes: BTreeSet<LocalRouter> = edges.iter().flat_map(|(a, b)| [*a, *b]).collect();
    nodes.insert(root);
    nodes
}

/// Walks from `from` along the BFS tree toward `root` until reaching a
/// node in `tree`, returning the edges walked (may be empty when
/// `from` is already on the tree).
pub fn path_to_tree(
    net: &DomainNet,
    root: LocalRouter,
    from: LocalRouter,
    tree: &BTreeSet<LocalRouter>,
) -> BTreeSet<(LocalRouter, LocalRouter)> {
    let parents = net.bfs_parents(root);
    let mut edges = BTreeSet::new();
    let mut cur = from;
    while !tree.contains(&cur) {
        let Some(p) = parents[cur] else { break };
        edges.insert(if cur < p { (cur, p) } else { (p, cur) });
        cur = p;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spanning_edges_on_line() {
        let net = DomainNet::line(5);
        let edges = spanning_edges(&net, 0, &[3]);
        assert_eq!(edges.len(), 3);
        let edges = spanning_edges(&net, 0, &[3, 4]);
        assert_eq!(edges.len(), 4); // shared prefix counted once
        let nodes = tree_nodes(0, &edges);
        assert_eq!(nodes.len(), 5);
    }

    #[test]
    fn path_to_tree_stops_at_tree() {
        let net = DomainNet::line(5);
        let edges = spanning_edges(&net, 0, &[2]);
        let tree = tree_nodes(0, &edges);
        // Node 4 walks toward 0 and reaches the tree at node 2.
        let extra = path_to_tree(&net, 0, 4, &tree);
        assert_eq!(extra.len(), 2); // edges (3,4), (2,3)
                                    // A node already on the tree walks zero edges.
        assert!(path_to_tree(&net, 0, 1, &tree).is_empty());
    }
}
