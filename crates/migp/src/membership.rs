//! Shared membership bookkeeping for MIGP implementations.

use std::collections::{BTreeMap, BTreeSet};

use mcast_addr::McastAddr;

use crate::api::MigpEvent;
use crate::domain_net::LocalRouter;

/// Per-group membership and border-subscription state common to every
/// protocol implementation.
#[derive(Debug, Clone, Default)]
pub struct Membership {
    members: BTreeMap<McastAddr, BTreeSet<LocalRouter>>,
    borders: BTreeMap<McastAddr, BTreeSet<LocalRouter>>,
}

impl Membership {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member; returns `FirstMember` when the domain previously
    /// had none (the Domain-Wide-Report moment).
    pub fn join(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent> {
        let set = self.members.entry(g).or_default();
        let was_empty = set.is_empty();
        set.insert(r);
        if was_empty {
            vec![MigpEvent::FirstMember(g)]
        } else {
            vec![]
        }
    }

    /// Removes a member; returns `LastMemberLeft` when it was the last.
    pub fn leave(&mut self, r: LocalRouter, g: McastAddr) -> Vec<MigpEvent> {
        let Some(set) = self.members.get_mut(&g) else {
            return vec![];
        };
        set.remove(&r);
        if set.is_empty() {
            self.members.remove(&g);
            vec![MigpEvent::LastMemberLeft(g)]
        } else {
            vec![]
        }
    }

    /// Border router subscription (BGMP child target).
    pub fn subscribe(&mut self, b: LocalRouter, g: McastAddr) {
        self.borders.entry(g).or_default().insert(b);
    }

    /// Removes a border subscription.
    pub fn unsubscribe(&mut self, b: LocalRouter, g: McastAddr) {
        if let Some(set) = self.borders.get_mut(&g) {
            set.remove(&b);
            if set.is_empty() {
                self.borders.remove(&g);
            }
        }
    }

    /// Any members?
    pub fn has_members(&self, g: McastAddr) -> bool {
        self.members.get(&g).is_some_and(|s| !s.is_empty())
    }

    /// Member routers.
    pub fn members_of(&self, g: McastAddr) -> Vec<LocalRouter> {
        self.members
            .get(&g)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Subscribed border routers.
    pub fn borders_of(&self, g: McastAddr) -> Vec<LocalRouter> {
        self.borders
            .get(&g)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Receivers of a packet: all member routers (hosts at the entry
    /// router still receive a local copy) and all subscribed borders
    /// except `exclude` — the entry border for *transit* data (never
    /// echo it back where it came from); `None` for locally sourced
    /// data, where even the sender's own border must forward.
    pub fn receivers(
        &self,
        g: McastAddr,
        exclude: Option<LocalRouter>,
    ) -> (Vec<LocalRouter>, Vec<LocalRouter>) {
        let members: Vec<LocalRouter> = self.members_of(g);
        let borders: Vec<LocalRouter> = self
            .borders_of(g)
            .into_iter()
            .filter(|r| Some(*r) != exclude)
            .collect();
        (members, borders)
    }
}

impl snapshot::Snapshot for Membership {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.members.encode(enc);
        self.borders.encode(enc);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(Membership {
            members: snapshot::Snapshot::decode(dec)?,
            borders: snapshot::Snapshot::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(x: u32) -> McastAddr {
        McastAddr(0xE000_0000 | x)
    }

    #[test]
    fn first_and_last_member_events() {
        let mut m = Membership::new();
        assert_eq!(m.join(1, g(1)), vec![MigpEvent::FirstMember(g(1))]);
        assert_eq!(m.join(2, g(1)), vec![]);
        assert!(m.has_members(g(1)));
        assert_eq!(m.leave(1, g(1)), vec![]);
        assert_eq!(m.leave(2, g(1)), vec![MigpEvent::LastMemberLeft(g(1))]);
        assert!(!m.has_members(g(1)));
        // Leaving a non-member group is a no-op.
        assert_eq!(m.leave(3, g(9)), vec![]);
    }

    #[test]
    fn subscriptions_are_separate_from_membership() {
        let mut m = Membership::new();
        m.subscribe(0, g(1));
        assert!(!m.has_members(g(1)));
        assert_eq!(m.borders_of(g(1)), vec![0]);
        m.unsubscribe(0, g(1));
        assert!(m.borders_of(g(1)).is_empty());
    }

    #[test]
    fn receivers_exclude_entry_border_but_not_members() {
        let mut m = Membership::new();
        m.join(1, g(1));
        m.join(2, g(1));
        m.subscribe(0, g(1));
        // A member at the entry router still receives its local copy.
        let (mem, bor) = m.receivers(g(1), Some(2));
        assert_eq!(mem, vec![1, 2]);
        assert_eq!(bor, vec![0]);
        // Transit data is never echoed to the entry border...
        let (_, bor) = m.receivers(g(1), Some(0));
        assert!(bor.is_empty());
        // ...but locally sourced data goes to every border.
        let (_, bor) = m.receivers(g(1), None);
        assert_eq!(bor, vec![0]);
    }
}
