//! The sans-io BGP speaker engine.
//!
//! A [`BgpSpeaker`] is a plain state machine: feed it events (received
//! updates, peer transitions, local originations) and it returns the
//! messages to transmit. The same engine runs inside the discrete-event
//! simulator and the tokio actor runtime.
//!
//! Semantics implemented (deliberately simplified from RFC 1771 to what
//! the paper's architecture needs — see DESIGN.md):
//!
//! * full-mesh iBGP among a domain's border routers, no re-reflection
//!   of iBGP-learned routes to other internal peers;
//! * next-hop-self on iBGP propagation, giving the paper's §4.2
//!   behaviour (A1 stores `(224.0.128/24, A3)` after A3 learned the
//!   route from B1);
//! * eBGP loop detection by own-ASN in the AS path;
//! * export policy per peer relationship ([`ExportPolicy`]);
//! * aggregation suppression: group routes that entered from customers
//!   and are covered by one of our own originated group routes are not
//!   exported to external peers (§4.2: "A's border routers need not
//!   propagate 224.0.128.0/24 to other domains").

use std::collections::{BTreeMap, BTreeSet};

use mcast_addr::Prefix;

use crate::msg::{BgpMsg, OutMsg};
use crate::policy::{classify, ExportPolicy, PeerConfig, RouteSourceKind};
use crate::rib::Rib;
use crate::route::{Asn, Nlri, Route, RouterId};

/// Events a speaker consumes.
#[derive(Debug, Clone)]
pub enum BgpEvent {
    /// A message arrived from a configured peer.
    FromPeer {
        /// Sending router.
        from: RouterId,
        /// The message.
        msg: BgpMsg,
    },
    /// The session to this peer went down; flush its routes.
    PeerDown(RouterId),
    /// The session to this peer (re-)established; send it our full
    /// eligible table.
    PeerUp(RouterId),
}

/// A sans-io BGP speaker for one border router.
#[derive(Debug, Clone)]
pub struct BgpSpeaker {
    router: RouterId, // lint:allow(snapshot-field-coverage) — identity; stays with the rebuilt instance
    asn: Asn, // lint:allow(snapshot-field-coverage) — identity; stays with the rebuilt instance
    peers: BTreeMap<RouterId, PeerConfig>, // lint:allow(snapshot-field-coverage) — peering config; stays with the rebuilt instance
    rib: Rib,
    policy: ExportPolicy, // lint:allow(snapshot-field-coverage) — static policy config; stays with the rebuilt instance
    /// Suppress exporting customer group routes covered by our own
    /// originations (§4.2/§4.3.2). On by default.
    pub aggregate_suppress: bool,
    /// Domain-entry classification of each adj-in entry.
    kinds: BTreeMap<(RouterId, Nlri), RouteSourceKind>,
    /// Group prefixes this speaker's domain originates.
    local_groups: BTreeSet<Prefix>,
    /// Adj-RIB-Out: what we last told each peer, to emit minimal diffs.
    out: BTreeMap<(RouterId, Nlri), Route>,
    /// Peers whose session is currently down.
    down: BTreeSet<RouterId>,
}

impl BgpSpeaker {
    /// Creates a speaker for `router` in domain `asn` with the given
    /// peerings and export policy.
    pub fn new(router: RouterId, asn: Asn, peers: Vec<PeerConfig>, policy: ExportPolicy) -> Self {
        BgpSpeaker {
            router,
            asn,
            peers: peers.into_iter().map(|p| (p.router, p)).collect(),
            rib: Rib::new(),
            policy,
            aggregate_suppress: true,
            kinds: BTreeMap::new(),
            local_groups: BTreeSet::new(),
            out: BTreeMap::new(),
            down: BTreeSet::new(),
        }
    }

    /// This speaker's router id.
    pub fn router(&self) -> RouterId {
        self.router
    }

    /// This speaker's domain.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// Read access to the RIB (G-RIB lookups for BGMP).
    pub fn rib(&self) -> &Rib {
        &self.rib
    }

    /// Drains the group prefixes whose G-RIB selection changed since
    /// the last drain (see [`Rib::take_changed_groups`]). Hosts call
    /// this after every event that may mutate the RIB and invalidate
    /// only the covered slices of their derived caches.
    pub fn take_changed_groups(&mut self) -> Vec<Prefix> {
        self.rib.take_changed_groups()
    }

    /// The configured peers.
    pub fn peers(&self) -> impl Iterator<Item = &PeerConfig> {
        self.peers.values()
    }

    /// Originates a group route for `prefix` (MASC finished a claim).
    pub fn originate_group(&mut self, prefix: Prefix) -> Vec<OutMsg> {
        self.local_groups.insert(prefix);
        let nlri = Nlri::Group(prefix);
        self.kinds
            .insert((RouterId::MAX, nlri), RouteSourceKind::Local);
        let mut msgs = Vec::new();
        if self
            .rib
            .originate(Route::originate(nlri, self.asn, self.router))
            .is_some()
        {
            msgs.extend(self.export(nlri));
        }
        // A new covering origin may newly suppress child routes.
        msgs.extend(self.re_export_covered(prefix));
        msgs
    }

    /// Withdraws a previously originated group route (lifetime expiry
    /// or range release).
    pub fn withdraw_group(&mut self, prefix: Prefix) -> Vec<OutMsg> {
        self.local_groups.remove(&prefix);
        let nlri = Nlri::Group(prefix);
        self.kinds.remove(&(RouterId::MAX, nlri));
        let mut msgs = Vec::new();
        if self.rib.withdraw_local(nlri).is_some() {
            msgs.extend(self.export(nlri));
        }
        msgs.extend(self.re_export_covered(prefix));
        msgs
    }

    /// Originates the domain-reachability route for our own domain.
    pub fn originate_domain(&mut self) -> Vec<OutMsg> {
        let nlri = Nlri::Domain(self.asn);
        self.kinds
            .insert((RouterId::MAX, nlri), RouteSourceKind::Local);
        if self
            .rib
            .originate(Route::originate(nlri, self.asn, self.router))
            .is_some()
        {
            self.export(nlri)
        } else {
            Vec::new()
        }
    }

    /// Feeds one event, returning the messages to send.
    pub fn handle(&mut self, ev: BgpEvent) -> Vec<OutMsg> {
        match ev {
            BgpEvent::FromPeer { from, msg } => self.handle_msg(from, msg),
            BgpEvent::PeerDown(peer) => {
                self.down.insert(peer);
                // Forget what we advertised to it; on PeerUp we resend.
                let stale: Vec<(RouterId, Nlri)> = self
                    .out
                    .keys()
                    .filter(|(p, _)| *p == peer)
                    .copied()
                    .collect();
                for k in stale {
                    self.out.remove(&k);
                }
                let changed = self.rib.flush_peer(peer);
                for (_, n) in self.kinds.clone().keys().filter(|(p, _)| *p == peer) {
                    self.kinds.remove(&(peer, *n));
                }
                let mut msgs = Vec::new();
                for n in changed {
                    msgs.extend(self.export(n));
                }
                msgs
            }
            BgpEvent::PeerUp(peer) => {
                self.down.remove(&peer);
                // The peer lost its session state; resend from scratch.
                let stale: Vec<(RouterId, Nlri)> = self
                    .out
                    .keys()
                    .filter(|(p, _)| *p == peer)
                    .copied()
                    .collect();
                for k in stale {
                    self.out.remove(&k);
                }
                let nlris: Vec<Nlri> = self.rib.loc_rib().map(|r| r.nlri).collect();
                let mut msgs = Vec::new();
                for n in nlris {
                    if let Some(m) = self.sync_one(peer, n) {
                        msgs.push(m);
                    }
                }
                msgs
            }
        }
    }

    fn handle_msg(&mut self, from: RouterId, msg: BgpMsg) -> Vec<OutMsg> {
        let Some(peer) = self.peers.get(&from).copied() else {
            return Vec::new(); // unknown peer: drop
        };
        match msg {
            BgpMsg::Update { mut route, kind } => {
                let external = !peer.is_internal();
                if external && route.path_contains(self.asn) {
                    return Vec::new(); // eBGP loop
                }
                // eBGP-vs-iBGP is a receiver-side attribute.
                route.ebgp = external;
                let kind = if external { classify(peer.rel) } else { kind };
                let nlri = route.nlri;
                self.kinds.insert((from, nlri), kind);
                if self.rib.update_from(from, route).is_some() {
                    let mut msgs = self.export(nlri);
                    // A domain-origin group route arriving over iBGP can
                    // newly suppress covered customer routes.
                    if let Nlri::Group(g) = nlri {
                        if kind == RouteSourceKind::Local {
                            msgs.extend(self.re_export_covered(g));
                        }
                    }
                    msgs
                } else {
                    Vec::new()
                }
            }
            BgpMsg::Withdraw(nlri) => {
                self.kinds.remove(&(from, nlri));
                if self.rib.withdraw_from(from, nlri).is_some() {
                    let mut msgs = self.export(nlri);
                    if let Nlri::Group(g) = nlri {
                        msgs.extend(self.re_export_covered(g));
                    }
                    msgs
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// The domain-entry classification of the current best route for
    /// `nlri`.
    fn best_kind(&self, nlri: Nlri) -> Option<RouteSourceKind> {
        let (src, _) = self.rib.best_with_source(nlri)?;
        self.kinds.get(&(src, nlri)).copied()
    }

    /// Recomputes what each peer should see for `nlri` and emits diffs
    /// against the Adj-RIB-Out.
    fn export(&mut self, nlri: Nlri) -> Vec<OutMsg> {
        let peer_ids: Vec<RouterId> = self.peers.keys().copied().collect();
        let mut msgs = Vec::new();
        for to in peer_ids {
            if self.down.contains(&to) {
                continue;
            }
            if let Some(m) = self.sync_one(to, nlri) {
                msgs.push(m);
            }
        }
        msgs
    }

    /// Re-exports every group NLRI covered by `prefix` (suppression may
    /// have flipped).
    fn re_export_covered(&mut self, prefix: Prefix) -> Vec<OutMsg> {
        let covered: Vec<Nlri> = self
            .rib
            .group_routes()
            .filter(|(p, _)| prefix.covers(p) && **p != prefix)
            .map(|(p, _)| Nlri::Group(*p))
            .collect();
        let mut msgs = Vec::new();
        for n in covered {
            msgs.extend(self.export(n));
        }
        msgs
    }

    /// Computes the desired advertisement of `nlri` to `to` and emits a
    /// message iff it differs from what `to` was last told.
    fn sync_one(&mut self, to: RouterId, nlri: Nlri) -> Option<OutMsg> {
        let desired = self.desired_route(to, nlri);
        let current = self.out.get(&(to, nlri));
        if current == desired.as_ref() {
            return None;
        }
        match desired {
            Some(route) => {
                self.out.insert((to, nlri), route.clone());
                let kind = self.best_kind(nlri).unwrap_or(RouteSourceKind::Local);
                Some(OutMsg {
                    to,
                    msg: BgpMsg::Update { route, kind },
                })
            }
            None => {
                self.out.remove(&(to, nlri));
                Some(OutMsg {
                    to,
                    msg: BgpMsg::Withdraw(nlri),
                })
            }
        }
    }

    /// The route (if any) that peer `to` should currently be told for
    /// `nlri`.
    fn desired_route(&self, to: RouterId, nlri: Nlri) -> Option<Route> {
        let peer = self.peers.get(&to)?;
        let (src, best) = self.rib.best_with_source(nlri)?;
        // Split horizon: never echo a route back to its contributor.
        if src == to {
            return None;
        }
        let src_internal =
            src != RouterId::MAX && self.peers.get(&src).is_some_and(|p| p.is_internal());
        // iBGP no-reflection: internal-learned routes don't go to
        // internal peers.
        if src_internal && peer.is_internal() {
            return None;
        }
        let kind = self.best_kind(nlri)?;
        if !peer.is_internal() {
            // Export policy.
            if !self.policy.allows(kind, peer.rel) {
                return None;
            }
            // Aggregation suppression: our *domain's* origin covers
            // this more-specific customer route; outsiders follow the
            // aggregate (§4.2). A covering origin is visible either as
            // our own origination or as an iBGP-learned route whose
            // domain-entry kind is Local.
            if self.aggregate_suppress && kind == RouteSourceKind::Customer {
                if let Nlri::Group(g) = nlri {
                    let covered_by_origin = self
                        .rib
                        .group_routes()
                        .filter(|(o, _)| **o != g && o.covers(&g))
                        .any(|(o, _)| {
                            self.local_groups.contains(o)
                                || self.best_kind(Nlri::Group(*o)) == Some(RouteSourceKind::Local)
                        });
                    if covered_by_origin {
                        return None;
                    }
                }
            }
        }
        // Build the outgoing route.
        let mut route = best.clone();
        route.local = false;
        if peer.is_internal() {
            route.next_hop = self.router; // next-hop-self (paper §4.2)
        } else {
            route.next_hop = self.router;
            if route.as_path.first() != Some(&self.asn) {
                route.as_path = route.as_path.prepend(self.asn);
            }
        }
        Some(route)
    }
}

impl snapshot::SnapshotState for BgpSpeaker {
    /// Dynamic state only: the RIB, entry-kind classifications, local
    /// originations, Adj-RIB-Out, and down-peer set. Identity and
    /// peering configuration (`router`, `asn`, `peers`, `policy`) stay
    /// with the rebuilt instance.
    fn encode_state(&self, enc: &mut snapshot::Enc) {
        use snapshot::Snapshot;
        self.rib.encode(enc);
        self.kinds.encode(enc);
        self.local_groups.encode(enc);
        self.out.encode(enc);
        self.down.encode(enc);
        enc.bool(self.aggregate_suppress);
    }

    fn restore_state(&mut self, dec: &mut snapshot::Dec<'_>) -> Result<(), snapshot::SnapError> {
        use snapshot::Snapshot;
        self.rib = Rib::decode(dec)?;
        self.kinds = Snapshot::decode(dec)?;
        self.local_groups = Snapshot::decode(dec)?;
        self.out = Snapshot::decode(dec)?;
        self.down = Snapshot::decode(dec)?;
        self.aggregate_suppress = dec.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PeerRel;
    use mcast_addr::McastAddr;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn peer(router: RouterId, asn: Asn, rel: PeerRel) -> PeerConfig {
        PeerConfig { router, asn, rel }
    }

    /// Delivers messages between a set of speakers until quiescent.
    /// Returns the number of messages exchanged.
    fn settle(
        speakers: &mut BTreeMap<RouterId, BgpSpeaker>,
        mut pending: Vec<(RouterId, OutMsg)>,
    ) -> usize {
        let mut count = 0;
        while let Some((from, out)) = pending.pop() {
            count += 1;
            assert!(count < 10_000, "BGP did not converge");
            let Some(sp) = speakers.get_mut(&out.to) else {
                continue;
            };
            let more = sp.handle(BgpEvent::FromPeer { from, msg: out.msg });
            let me = out.to;
            pending.extend(more.into_iter().map(|m| (me, m)));
        }
        count
    }

    /// Builds the paper's figure-1 core: domain A with 4 border routers
    /// (10,11,12,13), domain B with router 20 (customer of A via 13⇄20),
    /// domain C with router 30 (customer of A via 12⇄30).
    fn fig1_speakers() -> BTreeMap<RouterId, BgpSpeaker> {
        let mut m = BTreeMap::new();
        let a_internal = |me: RouterId| -> Vec<PeerConfig> {
            [10, 11, 12, 13]
                .iter()
                .filter(|r| **r != me)
                .map(|r| peer(*r, 1, PeerRel::Internal))
                .collect()
        };
        let mut a1 = a_internal(10);
        let mut a2 = a_internal(11);
        let mut a3 = a_internal(12);
        let mut a4 = a_internal(13);
        a3.push(peer(30, 3, PeerRel::Customer)); // A2 in paper -> C1
        a4.push(peer(20, 2, PeerRel::Customer)); // A3 in paper -> B1
        let _ = &mut a1;
        let _ = &mut a2;
        m.insert(
            10,
            BgpSpeaker::new(10, 1, a1, ExportPolicy::ProviderCustomer),
        );
        m.insert(
            11,
            BgpSpeaker::new(11, 1, a2, ExportPolicy::ProviderCustomer),
        );
        m.insert(
            12,
            BgpSpeaker::new(12, 1, a3, ExportPolicy::ProviderCustomer),
        );
        m.insert(
            13,
            BgpSpeaker::new(13, 1, a4, ExportPolicy::ProviderCustomer),
        );
        m.insert(
            20,
            BgpSpeaker::new(
                20,
                2,
                vec![peer(13, 1, PeerRel::Provider)],
                ExportPolicy::ProviderCustomer,
            ),
        );
        m.insert(
            30,
            BgpSpeaker::new(
                30,
                3,
                vec![peer(12, 1, PeerRel::Provider)],
                ExportPolicy::ProviderCustomer,
            ),
        );
        m
    }

    #[test]
    fn group_route_propagates_with_ibgp_next_hop_self() {
        let mut sp = fig1_speakers();
        // B originates its claimed range (paper: 224.0.128/24).
        let msgs = sp
            .get_mut(&20)
            .unwrap()
            .originate_group(p("224.0.128.0/24"));
        settle(&mut sp, msgs.into_iter().map(|m| (20, m)).collect());
        // A4 (13) learned it from B1 (20) directly.
        let r13 = sp[&13]
            .rib()
            .lookup_group(McastAddr::from_octets(224, 0, 128, 1))
            .unwrap();
        assert_eq!(r13.next_hop, 20);
        // Other A routers use A4 as next hop (next-hop-self on iBGP).
        for r in [10, 11, 12] {
            let route = sp[&r]
                .rib()
                .lookup_group(McastAddr::from_octets(224, 0, 128, 1))
                .unwrap();
            assert_eq!(route.next_hop, 13, "router {r} should point at 13");
        }
        // C (30) hears it via A2/12 with A's ASN prepended.
        let r30 = sp[&30]
            .rib()
            .lookup_group(McastAddr::from_octets(224, 0, 128, 1))
            .unwrap();
        assert_eq!(r30.next_hop, 12);
        assert_eq!(r30.as_path, vec![1, 2]);
    }

    #[test]
    fn aggregation_suppresses_covered_customer_route() {
        let mut sp = fig1_speakers();
        // B originates its /24 first.
        let msgs = sp
            .get_mut(&20)
            .unwrap()
            .originate_group(p("224.0.128.0/24"));
        settle(&mut sp, msgs.into_iter().map(|m| (20, m)).collect());
        // Now A originates its covering /16 from router A1 (10).
        let msgs = sp.get_mut(&10).unwrap().originate_group(p("224.0.0.0/16"));
        settle(&mut sp, msgs.into_iter().map(|m| (10, m)).collect());
        // The suppression point is A4 (13): it heard the /24 from its
        // customer, and once IT originates/hears A's covering origin it
        // must stop exporting the /24 externally. Suppression applies at
        // the router that owns the origin; here the origin lives on A1,
        // so A4 still exports. Re-originate on A4 to model the paper's
        // "A's border routers" collectively (each MASC speaker injects
        // at its own border router).
        let msgs = sp.get_mut(&13).unwrap().originate_group(p("224.0.0.0/16"));
        settle(&mut sp, msgs.into_iter().map(|m| (13, m)).collect());
        // C still reaches the root domain for 224.0.128.x — via the /16.
        let hit = sp[&30]
            .rib()
            .lookup_group(McastAddr::from_octets(224, 0, 128, 1))
            .unwrap();
        assert_eq!(hit.nlri.as_group().unwrap(), p("224.0.0.0/16"));
        // But inside A, the /24 is still known and more specific.
        let hit = sp[&12]
            .rib()
            .lookup_group(McastAddr::from_octets(224, 0, 128, 1))
            .unwrap();
        assert_eq!(hit.nlri.as_group().unwrap(), p("224.0.128.0/24"));
        // And C's G-RIB no longer carries the /24.
        assert!(sp[&30]
            .rib()
            .group_routes()
            .all(|(pre, _)| *pre != p("224.0.128.0/24")));
    }

    #[test]
    fn provider_customer_policy_blocks_peer_routes() {
        // X -peer- Y, Y has customer C. X's routes must not be exported
        // by Y to another peer Z.
        let mut sp: BTreeMap<RouterId, BgpSpeaker> = BTreeMap::new();
        sp.insert(
            1,
            BgpSpeaker::new(
                1,
                100,
                vec![peer(2, 200, PeerRel::Peer)],
                ExportPolicy::ProviderCustomer,
            ),
        );
        sp.insert(
            2,
            BgpSpeaker::new(
                2,
                200,
                vec![
                    peer(1, 100, PeerRel::Peer),
                    peer(3, 300, PeerRel::Peer),
                    peer(4, 400, PeerRel::Customer),
                ],
                ExportPolicy::ProviderCustomer,
            ),
        );
        sp.insert(
            3,
            BgpSpeaker::new(
                3,
                300,
                vec![peer(2, 200, PeerRel::Peer)],
                ExportPolicy::ProviderCustomer,
            ),
        );
        sp.insert(
            4,
            BgpSpeaker::new(
                4,
                400,
                vec![peer(2, 200, PeerRel::Provider)],
                ExportPolicy::ProviderCustomer,
            ),
        );
        let msgs = sp.get_mut(&1).unwrap().originate_group(p("224.1.0.0/16"));
        settle(&mut sp, msgs.into_iter().map(|m| (1, m)).collect());
        // Customer 4 hears it (providers export everything to customers).
        assert!(sp[&4]
            .rib()
            .lookup_group(McastAddr::from_octets(224, 1, 0, 1))
            .is_some());
        // Peer 3 does not (peer routes don't go to peers).
        assert!(sp[&3]
            .rib()
            .lookup_group(McastAddr::from_octets(224, 1, 0, 1))
            .is_none());
    }

    #[test]
    fn ebgp_loop_detection() {
        let mut sp = BgpSpeaker::new(
            1,
            100,
            vec![peer(2, 200, PeerRel::Peer)],
            ExportPolicy::Open,
        );
        let looped = Route {
            nlri: Nlri::Group(p("224.0.0.0/16")),
            as_path: vec![200, 100, 5].into(),
            next_hop: 2,
            local: false,
            ebgp: true,
        };
        let out = sp.handle(BgpEvent::FromPeer {
            from: 2,
            msg: BgpMsg::Update {
                route: looped,
                kind: RouteSourceKind::Peer,
            },
        });
        assert!(out.is_empty());
        assert!(sp
            .rib()
            .lookup_group(McastAddr::from_octets(224, 0, 0, 1))
            .is_none());
    }

    #[test]
    fn peer_down_flushes_and_up_resyncs() {
        let mut sp = fig1_speakers();
        let msgs = sp
            .get_mut(&20)
            .unwrap()
            .originate_group(p("224.0.128.0/24"));
        settle(&mut sp, msgs.into_iter().map(|m| (20, m)).collect());
        // A4 loses its session to B1.
        let msgs = sp.get_mut(&13).unwrap().handle(BgpEvent::PeerDown(20));
        settle(&mut sp, msgs.into_iter().map(|m| (13, m)).collect());
        assert!(sp[&10]
            .rib()
            .lookup_group(McastAddr::from_octets(224, 0, 128, 1))
            .is_none());
        assert!(sp[&30]
            .rib()
            .lookup_group(McastAddr::from_octets(224, 0, 128, 1))
            .is_none());
        // Session re-establishes: B resends its table.
        let msgs = sp.get_mut(&20).unwrap().handle(BgpEvent::PeerUp(13));
        // (B never flushed; it re-advertises everything eligible.)
        let up = sp.get_mut(&13).unwrap().handle(BgpEvent::PeerUp(20));
        assert!(up.is_empty(), "A4 has nothing for B yet");
        settle(&mut sp, msgs.into_iter().map(|m| (20, m)).collect());
        assert!(sp[&10]
            .rib()
            .lookup_group(McastAddr::from_octets(224, 0, 128, 1))
            .is_some());
    }

    #[test]
    fn withdraw_group_propagates() {
        let mut sp = fig1_speakers();
        let msgs = sp
            .get_mut(&20)
            .unwrap()
            .originate_group(p("224.0.128.0/24"));
        settle(&mut sp, msgs.into_iter().map(|m| (20, m)).collect());
        assert!(sp[&30]
            .rib()
            .lookup_group(McastAddr::from_octets(224, 0, 128, 1))
            .is_some());
        let msgs = sp.get_mut(&20).unwrap().withdraw_group(p("224.0.128.0/24"));
        settle(&mut sp, msgs.into_iter().map(|m| (20, m)).collect());
        for r in [10, 11, 12, 13, 30] {
            assert!(
                sp[&r]
                    .rib()
                    .lookup_group(McastAddr::from_octets(224, 0, 128, 1))
                    .is_none(),
                "router {r} still has the withdrawn route"
            );
        }
    }

    #[test]
    fn domain_routes_propagate_for_mrib() {
        let mut sp = fig1_speakers();
        let msgs = sp.get_mut(&20).unwrap().originate_domain();
        settle(&mut sp, msgs.into_iter().map(|m| (20, m)).collect());
        assert_eq!(sp[&30].rib().lookup_domain(2).unwrap().next_hop, 12);
        assert_eq!(sp[&13].rib().lookup_domain(2).unwrap().next_hop, 20);
    }

    #[test]
    fn no_redundant_updates_on_duplicate_events() {
        let mut sp = fig1_speakers();
        let msgs = sp
            .get_mut(&20)
            .unwrap()
            .originate_group(p("224.0.128.0/24"));
        settle(&mut sp, msgs.clone().into_iter().map(|m| (20, m)).collect());
        // Re-originating the identical prefix changes nothing.
        let again = sp
            .get_mut(&20)
            .unwrap()
            .originate_group(p("224.0.128.0/24"));
        assert!(
            again.is_empty(),
            "identical origination must be silent, got {again:?}"
        );
    }
}
