//! Route types: NLRI, path attributes, and next hops.
//!
//! The substrate follows the multiprotocol-BGP framing the paper builds
//! on (§2): one routing protocol carrying multiple *types* of routes,
//! each type giving a logical view of the table. We carry two:
//!
//! * **domain routes** — reachability to a domain (used for both the
//!   unicast view and the M-RIB; in this reproduction the two
//!   topologies are congruent unless a test configures otherwise);
//! * **group routes** — the paper's new type: a multicast address range
//!   bound to its root domain, forming the G-RIB.

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

use mcast_addr::Prefix;
use serde::{Deserialize, Serialize};

/// A BGP router (border router) identity, unique across a simulation.
pub type RouterId = u32;

/// An autonomous-system (domain) number.
pub type Asn = u32;

thread_local! {
    /// Per-thread AS-path intern table. Simulations carry the same few
    /// distinct paths in thousands of RIB entries; interning shares one
    /// allocation per distinct path and lets equality shortcut on
    /// pointer identity. Thread-local so the table needs no locking
    /// (parallel harnesses run one simulation per thread).
    static AS_PATH_INTERN: RefCell<HashSet<Arc<[Asn]>>> = RefCell::new(HashSet::new());
}

/// An interned, immutable AS path. Behaves like `[Asn]` via `Deref`;
/// construct with [`AsPath::new`] / `From<Vec<Asn>>` and extend with
/// [`AsPath::prepend`]. Serde and snapshot encodings are element-wise
/// and identical to a plain `Vec<Asn>`.
#[derive(Clone, Eq)]
pub struct AsPath(Arc<[Asn]>);

impl AsPath {
    /// Interns `path`, sharing storage with all equal paths on this
    /// thread.
    pub fn new(path: &[Asn]) -> Self {
        AS_PATH_INTERN.with(|t| {
            let mut t = t.borrow_mut();
            if let Some(a) = t.get(path) {
                AsPath(a.clone())
            } else {
                let a: Arc<[Asn]> = Arc::from(path);
                t.insert(a.clone());
                AsPath(a)
            }
        })
    }

    /// The path `[asn]` followed by this path (advertisement across a
    /// domain boundary).
    pub fn prepend(&self, asn: Asn) -> Self {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(asn);
        v.extend_from_slice(&self.0);
        Self::new(&v)
    }
}

impl std::ops::Deref for AsPath {
    type Target = [Asn];
    fn deref(&self) -> &[Asn] {
        &self.0
    }
}

impl PartialEq for AsPath {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl std::hash::Hash for AsPath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialEq<Vec<Asn>> for AsPath {
    fn eq(&self, other: &Vec<Asn>) -> bool {
        *self.0 == other[..]
    }
}

impl From<Vec<Asn>> for AsPath {
    fn from(v: Vec<Asn>) -> Self {
        Self::new(&v)
    }
}

impl From<&[Asn]> for AsPath {
    fn from(v: &[Asn]) -> Self {
        Self::new(v)
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<I: IntoIterator<Item = Asn>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<_>>())
    }
}

impl std::fmt::Debug for AsPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl Serialize for AsPath {
    fn to_value(&self) -> serde::Value {
        self.0[..].to_value()
    }
}

impl Deserialize for AsPath {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self::from(Vec::<Asn>::from_value(v)?))
    }
}

impl snapshot::Snapshot for AsPath {
    /// Framed exactly like `Vec<Asn>` (length, then elements), so the
    /// wire format is unchanged by interning.
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.seq(self.0.len());
        for a in self.0.iter() {
            enc.u32(*a);
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let v: Vec<Asn> = snapshot::Snapshot::decode(dec)?;
        Ok(Self::from(v))
    }
}

/// Network-layer reachability information: what a route is *for*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Nlri {
    /// Reachability to a whole domain (unicast / M-RIB view).
    Domain(Asn),
    /// A group route: the multicast range claimed by some root domain
    /// (G-RIB view).
    Group(Prefix),
}

impl Nlri {
    /// The group prefix, if this is a group route.
    pub fn as_group(&self) -> Option<Prefix> {
        match self {
            Nlri::Group(p) => Some(*p),
            Nlri::Domain(_) => None,
        }
    }
}

/// A route to an NLRI as stored in a RIB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// What the route reaches.
    pub nlri: Nlri,
    /// Domains the route has traversed, nearest first. The originator
    /// is last. Loop detection discards routes containing our own ASN.
    pub as_path: AsPath,
    /// The border router to forward to ("when X advertises a route for
    /// R to Y, Y can use X to reach R", §2).
    pub next_hop: RouterId,
    /// True when this RIB entry was originated locally (the root
    /// domain for a group route is *here*).
    pub local: bool,
    /// True when the route was learned over an eBGP session (set by
    /// the receiving speaker). Real BGP prefers eBGP over iBGP; so do
    /// we — without this rule two border routers can circularly prefer
    /// each other's next-hop-self iBGP routes.
    #[serde(default)]
    pub ebgp: bool,
}

impl Route {
    /// A locally originated route.
    pub fn originate(nlri: Nlri, own_asn: Asn, own_router: RouterId) -> Self {
        Route {
            nlri,
            as_path: AsPath::new(&[own_asn]),
            next_hop: own_router,
            local: true,
            ebgp: false,
        }
    }

    /// Does the AS path contain `asn` (loop check)?
    pub fn path_contains(&self, asn: Asn) -> bool {
        self.as_path.contains(&asn)
    }

    /// The domain that originated the route (root domain for group
    /// routes).
    pub fn origin_asn(&self) -> Option<Asn> {
        self.as_path.last().copied()
    }
}

/// Deterministic total preference order between candidate routes for
/// the same NLRI. Returns true if `a` is preferred over `b`:
/// local origination first, then shortest AS path, then eBGP over
/// iBGP, then lowest next-hop router id as the final tie-break
/// (stands in for BGP's lowest-router-id rule and keeps simulations
/// reproducible).
pub fn prefer(a: &Route, b: &Route) -> bool {
    (
        !a.local, // false sorts first
        a.as_path.len(),
        !a.ebgp,
        a.next_hop,
    ) < (!b.local, b.as_path.len(), !b.ebgp, b.next_hop)
}

impl snapshot::Snapshot for Nlri {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            Nlri::Domain(asn) => {
                enc.u8(0);
                enc.u32(*asn);
            }
            Nlri::Group(p) => {
                enc.u8(1);
                p.encode(enc);
            }
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(Nlri::Domain(dec.u32()?)),
            1 => Ok(Nlri::Group(Prefix::decode(dec)?)),
            _ => Err(snapshot::SnapError::Invalid("Nlri tag")),
        }
    }
}

impl snapshot::Snapshot for Route {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.nlri.encode(enc);
        self.as_path.encode(enc);
        enc.u32(self.next_hop);
        enc.bool(self.local);
        enc.bool(self.ebgp);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(Route {
            nlri: Nlri::decode(dec)?,
            as_path: snapshot::Snapshot::decode(dec)?,
            next_hop: dec.u32()?,
            local: dec.bool()?,
            ebgp: dec.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn originate_shape() {
        let r = Route::originate(Nlri::Group(p("224.0.0.0/16")), 7, 70);
        assert!(r.local);
        assert_eq!(r.as_path, vec![7]);
        assert_eq!(r.origin_asn(), Some(7));
        assert!(r.path_contains(7));
        assert!(!r.path_contains(8));
    }

    #[test]
    fn preference_order() {
        let g = Nlri::Group(p("224.0.0.0/16"));
        let local = Route::originate(g, 1, 10);
        let short = Route {
            nlri: g,
            as_path: vec![2, 3].into(),
            next_hop: 20,
            local: false,
            ebgp: false,
        };
        let long = Route {
            nlri: g,
            as_path: vec![2, 3, 4].into(),
            next_hop: 5,
            local: false,
            ebgp: false,
        };
        let short_low = Route {
            nlri: g,
            as_path: vec![9, 3].into(),
            next_hop: 15,
            local: false,
            ebgp: false,
        };
        assert!(prefer(&local, &short));
        assert!(prefer(&short, &long));
        assert!(prefer(&short_low, &short)); // same length, lower next hop
        assert!(!prefer(&long, &short));
        // eBGP beats iBGP at equal path length regardless of next hop.
        let ebgp = Route {
            nlri: g,
            as_path: vec![2, 3].into(),
            next_hop: 99,
            local: false,
            ebgp: true,
        };
        assert!(prefer(&ebgp, &short_low));
    }

    #[test]
    fn nlri_as_group() {
        assert_eq!(Nlri::Domain(3).as_group(), None);
        assert_eq!(
            Nlri::Group(p("224.0.0.0/8")).as_group(),
            Some(p("224.0.0.0/8"))
        );
    }
}
