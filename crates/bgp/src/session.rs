//! Peering-session liveness: a small BGP-style session state machine.
//!
//! The paper's control planes (BGP §2, BGMP §5.2) both run over
//! persistent TCP peerings whose failure must be *detected* — routes
//! from a dead peer are flushed and trees repaired. This module is the
//! keepalive/hold-timer machinery: transport-agnostic, driven by
//! explicit time like every other engine in this workspace.

use serde::{Deserialize, Serialize};

/// Session states (condensed from RFC 1771's six to the three that
/// matter for behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionState {
    /// No connection; retry at the recorded time.
    Idle,
    /// Transport up, awaiting the peer's first keepalive/open.
    Connecting,
    /// Exchanging routes; hold timer armed.
    Established,
}

/// Events the owner feeds the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// Transport connected.
    TransportUp,
    /// Transport failed or closed.
    TransportDown,
    /// Any message arrived from the peer (refreshes the hold timer).
    MessageReceived,
}

/// What the owner must do after feeding an event or a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionAction {
    /// Nothing.
    None,
    /// The session just established: send the full table (PeerUp).
    Up,
    /// The session died: flush the peer's routes (PeerDown).
    Down,
    /// Send a keepalive now.
    SendKeepalive,
}

/// Timer configuration. Paper-era defaults: 30 s keepalive, 90 s hold.
#[derive(Debug, Clone, Copy)]
pub struct SessionTimers {
    /// Keepalive transmit interval (seconds).
    pub keepalive: u64,
    /// Hold time: declare the peer dead after this long without any
    /// message (seconds). Must exceed `keepalive`.
    pub hold: u64,
    /// Reconnect back-off after a failure (seconds).
    pub retry: u64,
}

impl Default for SessionTimers {
    fn default() -> Self {
        SessionTimers {
            keepalive: 30,
            hold: 90,
            retry: 60,
        }
    }
}

/// A peering session with explicit-time liveness.
#[derive(Debug, Clone)]
pub struct Session {
    state: SessionState,
    timers: SessionTimers,
    /// Last time we heard anything from the peer.
    last_heard: u64,
    /// Last time we sent a keepalive.
    last_sent: u64,
    /// When Idle: earliest reconnect time.
    retry_at: u64,
}

impl Session {
    /// Creates an idle session (may connect immediately).
    pub fn new(timers: SessionTimers) -> Self {
        assert!(timers.hold > timers.keepalive, "hold must exceed keepalive");
        Session {
            state: SessionState::Idle,
            timers,
            last_heard: 0,
            last_sent: 0,
            retry_at: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Is the session exchanging routes?
    pub fn is_established(&self) -> bool {
        self.state == SessionState::Established
    }

    /// When Idle, the earliest time a reconnect should be attempted.
    pub fn retry_at(&self) -> u64 {
        self.retry_at
    }

    /// Feeds an event at time `now`.
    pub fn on_event(&mut self, now: u64, ev: SessionEvent) -> SessionAction {
        match (self.state, ev) {
            (SessionState::Idle, SessionEvent::TransportUp) => {
                self.state = SessionState::Connecting;
                self.last_heard = now;
                self.last_sent = now;
                // A stale back-off deadline must not survive the
                // transition: `next_deadline`/`retry_at` readers that
                // mix states would otherwise see the old retry time.
                self.retry_at = now;
                SessionAction::SendKeepalive
            }
            (SessionState::Connecting, SessionEvent::MessageReceived) => {
                self.state = SessionState::Established;
                self.last_heard = now;
                SessionAction::Up
            }
            (SessionState::Established, SessionEvent::MessageReceived) => {
                self.last_heard = now;
                SessionAction::None
            }
            (SessionState::Idle, SessionEvent::TransportDown)
            | (SessionState::Idle, SessionEvent::MessageReceived) => SessionAction::None,
            (_, SessionEvent::TransportDown) => {
                let was_established = self.state == SessionState::Established;
                self.state = SessionState::Idle;
                self.retry_at = now + self.timers.retry;
                if was_established {
                    SessionAction::Down
                } else {
                    SessionAction::None
                }
            }
            (_, SessionEvent::TransportUp) => SessionAction::None,
        }
    }

    /// Advances time: fires the hold timer and keepalive transmissions.
    pub fn on_tick(&mut self, now: u64) -> SessionAction {
        match self.state {
            SessionState::Idle => SessionAction::None,
            SessionState::Connecting | SessionState::Established => {
                if now.saturating_sub(self.last_heard) >= self.timers.hold {
                    let was_established = self.state == SessionState::Established;
                    self.state = SessionState::Idle;
                    self.retry_at = now + self.timers.retry;
                    return if was_established {
                        SessionAction::Down
                    } else {
                        SessionAction::None
                    };
                }
                if now.saturating_sub(self.last_sent) >= self.timers.keepalive {
                    self.last_sent = now;
                    return SessionAction::SendKeepalive;
                }
                SessionAction::None
            }
        }
    }

    /// The next time `on_tick` has something to do.
    pub fn next_deadline(&self) -> Option<u64> {
        match self.state {
            SessionState::Idle => Some(self.retry_at),
            _ => Some(
                (self.last_heard + self.timers.hold).min(self.last_sent + self.timers.keepalive),
            ),
        }
    }
}

impl snapshot::Snapshot for SessionState {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u8(match self {
            SessionState::Idle => 0,
            SessionState::Connecting => 1,
            SessionState::Established => 2,
        });
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(SessionState::Idle),
            1 => Ok(SessionState::Connecting),
            2 => Ok(SessionState::Established),
            _ => Err(snapshot::SnapError::Invalid("SessionState tag")),
        }
    }
}

impl snapshot::Snapshot for SessionTimers {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u64(self.keepalive);
        enc.u64(self.hold);
        enc.u64(self.retry);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let t = SessionTimers {
            keepalive: dec.u64()?,
            hold: dec.u64()?,
            retry: dec.u64()?,
        };
        if t.hold <= t.keepalive {
            // Same invariant `Session::new` asserts; a corrupt snapshot
            // must fail decode rather than panic later.
            return Err(snapshot::SnapError::Invalid("hold must exceed keepalive"));
        }
        Ok(t)
    }
}

impl snapshot::Snapshot for Session {
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.state.encode(enc);
        self.timers.encode(enc);
        enc.u64(self.last_heard);
        enc.u64(self.last_sent);
        enc.u64(self.retry_at);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(Session {
            state: SessionState::decode(dec)?,
            timers: SessionTimers::decode(dec)?,
            last_heard: dec.u64()?,
            last_sent: dec.u64()?,
            retry_at: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timers() -> SessionTimers {
        SessionTimers {
            keepalive: 10,
            hold: 30,
            retry: 20,
        }
    }

    #[test]
    fn establish_handshake() {
        let mut s = Session::new(timers());
        assert_eq!(s.state(), SessionState::Idle);
        assert_eq!(
            s.on_event(0, SessionEvent::TransportUp),
            SessionAction::SendKeepalive
        );
        assert_eq!(s.state(), SessionState::Connecting);
        assert_eq!(
            s.on_event(1, SessionEvent::MessageReceived),
            SessionAction::Up
        );
        assert!(s.is_established());
        // Further messages just refresh.
        assert_eq!(
            s.on_event(5, SessionEvent::MessageReceived),
            SessionAction::None
        );
    }

    #[test]
    fn hold_timer_declares_peer_dead() {
        let mut s = Session::new(timers());
        s.on_event(0, SessionEvent::TransportUp);
        s.on_event(1, SessionEvent::MessageReceived);
        // Quiet peer: keepalives go out, then the hold timer fires.
        assert_eq!(s.on_tick(11), SessionAction::SendKeepalive);
        assert_eq!(s.on_tick(21), SessionAction::SendKeepalive);
        assert_eq!(s.on_tick(31), SessionAction::Down);
        assert_eq!(s.state(), SessionState::Idle);
        assert_eq!(s.retry_at(), 31 + 20);
    }

    #[test]
    fn messages_keep_session_alive_indefinitely() {
        let mut s = Session::new(timers());
        s.on_event(0, SessionEvent::TransportUp);
        s.on_event(1, SessionEvent::MessageReceived);
        for t in (2..200).step_by(7) {
            s.on_event(t, SessionEvent::MessageReceived);
            assert_ne!(s.on_tick(t + 1), SessionAction::Down);
        }
        assert!(s.is_established());
    }

    #[test]
    fn transport_down_from_established_flushes() {
        let mut s = Session::new(timers());
        s.on_event(0, SessionEvent::TransportUp);
        s.on_event(1, SessionEvent::MessageReceived);
        assert_eq!(
            s.on_event(5, SessionEvent::TransportDown),
            SessionAction::Down
        );
        // Down again is a no-op (no double flush).
        assert_eq!(
            s.on_event(6, SessionEvent::TransportDown),
            SessionAction::None
        );
    }

    #[test]
    fn connecting_that_never_completes_times_out_quietly() {
        let mut s = Session::new(timers());
        s.on_event(0, SessionEvent::TransportUp);
        // Hold expires before the first message: no Down action (we
        // never announced Up), just back to Idle.
        assert_eq!(s.on_tick(10), SessionAction::SendKeepalive);
        assert_eq!(s.on_tick(30), SessionAction::None);
        assert_eq!(s.state(), SessionState::Idle);
    }

    #[test]
    fn deadlines_track_state() {
        let mut s = Session::new(timers());
        assert_eq!(s.next_deadline(), Some(0));
        s.on_event(100, SessionEvent::TransportUp);
        s.on_event(101, SessionEvent::MessageReceived);
        // Next deadline is the keepalive transmit at 110.
        assert_eq!(s.next_deadline(), Some(110));
        s.on_tick(110);
        assert_eq!(s.next_deadline(), Some(120));
    }

    #[test]
    fn transport_up_clears_stale_retry_deadline() {
        let mut s = Session::new(timers());
        s.on_event(0, SessionEvent::TransportUp);
        s.on_event(1, SessionEvent::MessageReceived);
        // Peer dies; back-off recorded.
        assert_eq!(s.on_tick(31), SessionAction::Down);
        assert_eq!(s.retry_at(), 51);
        // Reconnect attempt at the back-off deadline: the stale retry
        // time must not survive into Connecting (pre-fix it did, so
        // mixed-state `next_deadline`/`retry_at` readers saw 51).
        assert_eq!(
            s.on_event(51, SessionEvent::TransportUp),
            SessionAction::SendKeepalive
        );
        assert_eq!(s.state(), SessionState::Connecting);
        assert_eq!(s.retry_at(), 51); // == now, not a future back-off
        assert_eq!(s.next_deadline(), Some(61)); // keepalive, not retry
    }

    #[test]
    fn idle_connecting_hold_expiry_retry_cycles() {
        // Several full failure/recovery cycles: Idle → Connecting →
        // (no answer) hold expiry → Idle/backoff → retry → Established.
        let mut s = Session::new(timers());
        let mut now = 0;
        for cycle in 0..3 {
            assert_eq!(
                s.on_event(now, SessionEvent::TransportUp),
                SessionAction::SendKeepalive,
                "cycle {cycle}"
            );
            assert_eq!(s.retry_at(), now);
            // The peer stays silent: hold expires quietly (we never
            // announced Up from Connecting).
            now += 30;
            assert_eq!(s.on_tick(now), SessionAction::None);
            assert_eq!(s.state(), SessionState::Idle);
            assert_eq!(s.retry_at(), now + 20);
            assert_eq!(s.next_deadline(), Some(now + 20));
            now += 20;
        }
        // Finally the peer answers: full establish.
        s.on_event(now, SessionEvent::TransportUp);
        assert_eq!(
            s.on_event(now + 1, SessionEvent::MessageReceived),
            SessionAction::Up
        );
        assert!(s.is_established());
    }

    #[test]
    #[should_panic(expected = "hold must exceed keepalive")]
    fn rejects_bad_timers() {
        Session::new(SessionTimers {
            keepalive: 30,
            hold: 30,
            retry: 1,
        });
    }
}
