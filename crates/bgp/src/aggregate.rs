//! CIDR-style aggregation of group routes.
//!
//! §4.3.2: the prefixes a domain claims should aggregate so that the
//! number of group routes it injects into BGP — and therefore every
//! G-RIB — stays small. These helpers merge buddy prefixes bottom-up
//! and strip prefixes covered by others, and are used both by speakers
//! when originating and by the figure-2(b) accounting.

use std::collections::BTreeSet;

use mcast_addr::Prefix;

/// Merges a set of prefixes into the minimal equivalent set: buddies
/// combine into their parent repeatedly, and any prefix covered by
/// another is dropped. The result covers exactly the same addresses.
pub fn aggregate(prefixes: &[Prefix]) -> Vec<Prefix> {
    let mut set: BTreeSet<Prefix> = prefixes.iter().copied().collect();
    // Drop covered prefixes first so buddy merging sees canonical input.
    set = strip_covered(&set);
    loop {
        let mut merged = false;
        let mut next: BTreeSet<Prefix> = BTreeSet::new();
        let mut consumed: BTreeSet<Prefix> = BTreeSet::new();
        for p in &set {
            if consumed.contains(p) {
                continue;
            }
            if let Some(b) = p.buddy() {
                if set.contains(&b) && !consumed.contains(&b) {
                    consumed.insert(*p);
                    consumed.insert(b);
                    next.insert(p.parent().expect("buddy implies parent"));
                    merged = true;
                    continue;
                }
            }
            next.insert(*p);
        }
        set = strip_covered(&next);
        if !merged {
            break;
        }
    }
    set.into_iter().collect()
}

fn strip_covered(set: &BTreeSet<Prefix>) -> BTreeSet<Prefix> {
    set.iter()
        .filter(|p| !set.iter().any(|q| q != *p && q.covers(p)))
        .copied()
        .collect()
}

/// Is `p` covered by any prefix in `covers` other than itself?
pub fn is_covered_by_other(p: &Prefix, covers: &[Prefix]) -> bool {
    covers.iter().any(|c| c != p && c.covers(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn merges_buddies_recursively() {
        // Four consecutive /24s merge into one /22.
        let input = vec![
            p("224.0.0.0/24"),
            p("224.0.1.0/24"),
            p("224.0.2.0/24"),
            p("224.0.3.0/24"),
        ];
        assert_eq!(aggregate(&input), vec![p("224.0.0.0/22")]);
    }

    #[test]
    fn paper_cidr_example() {
        // 128.8/16 + 128.9/16 -> 128.8/15 (applied in multicast space).
        assert_eq!(
            aggregate(&[p("224.8.0.0/16"), p("224.9.0.0/16")]),
            vec![p("224.8.0.0/15")]
        );
    }

    #[test]
    fn non_buddies_stay_separate() {
        // 224.1/16 and 224.2/16 are NOT buddies (differ in bit 15 vs 16).
        let out = aggregate(&[p("224.1.0.0/16"), p("224.2.0.0/16")]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn covered_prefixes_dropped() {
        let out = aggregate(&[p("224.0.0.0/16"), p("224.0.128.0/24")]);
        assert_eq!(out, vec![p("224.0.0.0/16")]);
    }

    #[test]
    fn mixed_merge_and_cover() {
        let out = aggregate(&[
            p("224.0.0.0/24"),
            p("224.0.1.0/24"),
            p("224.0.0.0/23"), // covers both above
            p("224.0.2.0/24"),
        ]);
        assert_eq!(out, vec![p("224.0.0.0/23"), p("224.0.2.0/24")]);
    }

    #[test]
    fn empty_and_single() {
        assert!(aggregate(&[]).is_empty());
        assert_eq!(aggregate(&[p("224.0.0.0/8")]), vec![p("224.0.0.0/8")]);
    }

    #[test]
    fn is_covered_by_other_works() {
        let covers = vec![p("224.0.0.0/16"), p("224.0.128.0/24")];
        assert!(is_covered_by_other(&p("224.0.128.0/24"), &covers));
        assert!(!is_covered_by_other(&p("224.0.0.0/16"), &covers));
        assert!(!is_covered_by_other(&p("225.0.0.0/24"), &covers));
    }
}
