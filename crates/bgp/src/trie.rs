//! Binary prefix trie with longest-prefix match.
//!
//! Backs [`Rib::lookup_group`](crate::Rib::lookup_group) so the
//! per-packet G-RIB lookup §3 worries about costs O(prefix length)
//! instead of a scan over every selected route. The value type is
//! generic so other crates (masc, mcast-addr tooling) can reuse the
//! structure for their own prefix-keyed state.
//!
//! Keys are [`Prefix`]es: the trie branches on address bits from the
//! most significant downward, and a node at depth `d` may carry the
//! value stored for the /`d` prefix spelled by the path to it.
//!
//! # Determinism
//!
//! [`lookup`](PrefixTrie::lookup) walks the single root-to-leaf path
//! selected by the address bits, so for a given key set the result is
//! unique: two *distinct* prefixes of equal length can never cover the
//! same address (they differ in some bit at or above their common
//! length). The documented tie-break — longest match, then lowest
//! base — is therefore satisfied by construction.

use mcast_addr::{McastAddr, Prefix};

/// A node holds the value for the prefix spelled by the path to it
/// (if any) and up to two children keyed by the next address bit.
#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn empty() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }

    fn is_leafless(&self) -> bool {
        self.value.is_none() && self.children.iter().all(|c| c.is_none())
    }
}

/// Binary trie mapping [`Prefix`] → `V` with O(prefix-length) insert,
/// remove, exact get and longest-prefix-match lookup.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Node<V>,
    len: usize,
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Bit of `addr` consumed at trie depth `depth` (0 = most significant).
fn bit_at(addr: u32, depth: u8) -> usize {
    ((addr >> (31 - depth)) & 1) as usize
}

impl<V> PrefixTrie<V> {
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::empty(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `value` under `prefix`, returning the previous value if
    /// the prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let base = prefix.base_u32();
        let mut node = &mut self.root;
        for depth in 0..prefix.len() {
            node =
                node.children[bit_at(base, depth)].get_or_insert_with(|| Box::new(Node::empty()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Exact-match retrieval (no LPM semantics).
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let base = prefix.base_u32();
        let mut node = &self.root;
        for depth in 0..prefix.len() {
            node = node.children[bit_at(base, depth)].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Remove the value stored under `prefix`, pruning any interior
    /// nodes left without values or children so the trie never grows
    /// monotonically under churn.
    pub fn remove(&mut self, prefix: &Prefix) -> Option<V> {
        fn rec<V>(node: &mut Node<V>, base: u32, len: u8, depth: u8) -> (Option<V>, bool) {
            if depth == len {
                let taken = node.value.take();
                return (taken, node.is_leafless());
            }
            let bit = bit_at(base, depth);
            let Some(child) = node.children[bit].as_deref_mut() else {
                return (None, false);
            };
            let (taken, prune_child) = rec(child, base, len, depth + 1);
            if prune_child {
                node.children[bit] = None;
            }
            (taken, node.is_leafless())
        }

        let (taken, _) = rec(&mut self.root, prefix.base_u32(), prefix.len(), 0);
        if taken.is_some() {
            self.len -= 1;
        }
        taken
    }

    /// Longest-prefix match: the most specific stored prefix covering
    /// `addr`, together with its value. Walks at most 32 nodes.
    pub fn lookup(&self, addr: McastAddr) -> Option<(Prefix, &V)> {
        let a = addr.0;
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0, v));
        for depth in 0..32u8 {
            match node.children[bit_at(a, depth)].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| {
            let p = Prefix::containing(addr, len).expect("trie depth is a valid mask length");
            (p, v)
        })
    }

    /// All stored `(Prefix, &V)` pairs, in ascending (base, len) order
    /// of the path walk. Mostly useful for tests and debugging.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        fn walk<'a, V>(node: &'a Node<V>, base: u32, depth: u8, out: &mut Vec<(Prefix, &'a V)>) {
            if let Some(v) = node.value.as_ref() {
                let p = Prefix::new(base, depth).expect("trie path spells an aligned prefix");
                out.push((p, v));
            }
            if depth == 32 {
                return;
            }
            if let Some(c) = node.children[0].as_deref() {
                walk(c, base, depth + 1, out);
            }
            if let Some(c) = node.children[1].as_deref() {
                walk(c, base | (1 << (31 - depth)), depth + 1, out);
            }
        }
        walk(&self.root, 0, 0, &mut out);
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().expect("test prefix")
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("224.0.0.0/24"), 1), None);
        assert_eq!(t.insert(p("224.0.0.0/24"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&p("224.0.0.0/24")), Some(&2));
        assert_eq!(t.get(&p("224.0.0.0/25")), None);
        assert_eq!(t.remove(&p("224.0.0.0/24")), Some(2));
        assert_eq!(t.remove(&p("224.0.0.0/24")), None);
        assert!(t.is_empty());
    }

    #[test]
    fn lookup_prefers_most_specific() {
        let mut t = PrefixTrie::new();
        t.insert(Prefix::MULTICAST, "coarse");
        t.insert(p("224.1.0.0/16"), "mid");
        t.insert(p("224.1.2.0/24"), "fine");

        let a = McastAddr::from_octets(224, 1, 2, 9);
        assert_eq!(t.lookup(a), Some((p("224.1.2.0/24"), &"fine")));

        let b = McastAddr::from_octets(224, 1, 9, 9);
        assert_eq!(t.lookup(b), Some((p("224.1.0.0/16"), &"mid")));

        let c = McastAddr::from_octets(239, 9, 9, 9);
        assert_eq!(t.lookup(c), Some((Prefix::MULTICAST, &"coarse")));
    }

    #[test]
    fn lookup_miss_when_nothing_covers() {
        let mut t = PrefixTrie::new();
        t.insert(p("224.1.2.0/24"), ());
        assert_eq!(t.lookup(McastAddr::from_octets(224, 9, 0, 1)), None);
    }

    #[test]
    fn host_route_depth_32() {
        let mut t = PrefixTrie::new();
        let host = p("224.5.6.7/32");
        t.insert(host, 7u8);
        assert_eq!(
            t.lookup(McastAddr::from_octets(224, 5, 6, 7)),
            Some((host, &7))
        );
        assert_eq!(t.lookup(McastAddr::from_octets(224, 5, 6, 8)), None);
    }

    #[test]
    fn remove_prunes_interior_nodes() {
        let mut t = PrefixTrie::new();
        t.insert(p("224.0.0.0/8"), ());
        t.insert(p("224.1.2.0/24"), ());
        t.remove(&p("224.1.2.0/24"));
        // The /8 must survive and still resolve lookups under it.
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.lookup(McastAddr::from_octets(224, 1, 2, 3)),
            Some((p("224.0.0.0/8"), &()))
        );
        t.remove(&p("224.0.0.0/8"));
        assert!(t.is_empty());
        assert!(t.root.is_leafless(), "pruning must leave a bare root");
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = PrefixTrie::new();
        for s in ["224.0.0.0/4", "224.1.0.0/16", "232.0.0.0/8"] {
            t.insert(p(s), s.to_string());
        }
        let got: Vec<Prefix> = t.iter().map(|(pfx, _)| pfx).collect();
        assert_eq!(
            got,
            vec![p("224.0.0.0/4"), p("224.1.0.0/16"), p("232.0.0.0/8")]
        );
    }
}
