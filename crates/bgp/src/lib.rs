//! A simplified BGP substrate with multiprotocol route types.
//!
//! The paper uses BGP as the glue between MASC and BGMP (§2, §4.2):
//! MASC-claimed ranges are injected as *group routes*, propagated with
//! the same policy machinery as unicast routes, and collected into the
//! G-RIB that BGMP consults to find the next hop toward a group's root
//! domain. This crate implements exactly that slice of BGP:
//!
//! * [`route`] — NLRI (domain reachability + group routes), path
//!   attributes, deterministic preference order;
//! * [`rib`] — Adj-RIB-In / Loc-RIB with longest-prefix-match G-RIB
//!   queries;
//! * [`policy`] — provider/customer export rules and peer
//!   relationships;
//! * [`aggregate`] — CIDR aggregation of group routes (§4.3.2);
//! * [`msg`] — update/withdraw messages;
//! * [`speaker`] — the sans-io speaker engine shared by the simulator
//!   and the tokio actor runtime.

pub mod aggregate;
pub mod msg;
pub mod policy;
pub mod rib;
pub mod route;
pub mod session;
pub mod speaker;
pub mod trie;

pub use aggregate::aggregate;
pub use msg::{BgpMsg, OutMsg};
pub use policy::{ExportPolicy, PeerConfig, PeerRel, RouteSourceKind};
pub use rib::Rib;
pub use route::{AsPath, Asn, Nlri, Route, RouterId};
pub use session::{Session, SessionAction, SessionEvent, SessionState, SessionTimers};
pub use speaker::{BgpEvent, BgpSpeaker};
pub use trie::PrefixTrie;
