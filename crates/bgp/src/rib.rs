//! Routing information bases: Adj-RIB-In, Loc-RIB, and the G-RIB view
//! with longest-prefix match.
//!
//! # RIB internals
//!
//! Three structures back the public API:
//!
//! * `adj_in` is keyed `(Nlri, RouterId)` — NLRI first — so the
//!   decision process for one NLRI is a contiguous
//!   [`BTreeMap::range`] walk over exactly the candidate routes,
//!   instead of a scan of every route from every peer.
//! * `by_peer` is the reverse index (peer → NLRIs it contributed)
//!   that keeps [`Rib::flush_peer`] proportional to what the peer
//!   actually advertised.
//! * `grib_index` is a binary [`PrefixTrie`] over the *selected*
//!   group prefixes, maintained incrementally whenever the decision
//!   process changes the Loc-RIB. [`Rib::lookup_group`] walks it in
//!   O(prefix length) regardless of G-RIB size.

use std::collections::{BTreeMap, BTreeSet};

use mcast_addr::{McastAddr, Prefix};

use crate::route::{prefer, Nlri, Route, RouterId};
use crate::trie::PrefixTrie;

/// The per-speaker routing table. `Adj-RIB-In` keeps everything heard
/// per peer; `Loc-RIB` holds the selected best route per NLRI; the
/// G-RIB is the Loc-RIB filtered to group routes, queried by
/// longest-prefix match (BGMP's "look up the group in the G-RIB",
/// §4.2/§5).
#[derive(Debug, Default, Clone)]
pub struct Rib {
    /// Keyed `(Nlri, RouterId)` so all candidates for one NLRI are
    /// adjacent; locally originated routes use `RouterId::MAX`.
    adj_in: BTreeMap<(Nlri, RouterId), Route>,
    /// Reverse index for `flush_peer`: which NLRIs each peer has live
    /// in `adj_in`.
    // lint:allow(snapshot-field-coverage) — derived index, rebuilt from adj_in on decode
    by_peer: BTreeMap<RouterId, BTreeSet<Nlri>>,
    /// Best route per NLRI plus the peer that contributed it
    /// (`RouterId::MAX` for locally originated routes).
    loc: BTreeMap<Nlri, (RouterId, Route)>,
    /// Selected group prefixes, for O(prefix-len) LPM in
    /// `lookup_group`. Invariant: contains exactly the prefixes `p`
    /// with `Nlri::Group(p)` in `loc`.
    // lint:allow(snapshot-field-coverage) — derived trie, rebuilt from loc on decode
    grib_index: PrefixTrie<()>,
    /// Group prefixes whose Loc-RIB selection changed since the last
    /// [`Rib::take_changed_groups`] drain. An LPM answer for an
    /// address can only change when some prefix covering that address
    /// changes, so hosts invalidate derived per-group caches for
    /// exactly these ranges instead of wholesale. Transient: not
    /// snapshotted (drains are empty across a checkpoint boundary
    /// because restore rebuilds caches from scratch).
    // lint:allow(snapshot-field-coverage) — transient drain, intentionally empty across checkpoints
    changed_groups: Vec<Prefix>,
}

impl Rib {
    /// Creates an empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a route heard from `peer` and re-runs the decision
    /// process for its NLRI. Returns the new best route if the
    /// selection *changed* (including changing to `None`).
    pub fn update_from(&mut self, peer: RouterId, route: Route) -> Option<Option<&Route>> {
        let nlri = route.nlri;
        self.adj_in.insert((nlri, peer), route);
        self.by_peer.entry(peer).or_default().insert(nlri);
        self.decide(nlri)
    }

    /// Removes `peer`'s route for `nlri` (a withdraw) and re-decides.
    pub fn withdraw_from(&mut self, peer: RouterId, nlri: Nlri) -> Option<Option<&Route>> {
        self.adj_in.remove(&(nlri, peer))?;
        self.unindex_peer(peer, nlri);
        self.decide(nlri)
    }

    /// Installs or replaces a locally originated route and re-decides.
    pub fn originate(&mut self, route: Route) -> Option<Option<&Route>> {
        debug_assert!(route.local);
        let nlri = route.nlri;
        self.adj_in.insert((nlri, RouterId::MAX), route);
        self.by_peer.entry(RouterId::MAX).or_default().insert(nlri);
        self.decide(nlri)
    }

    /// Removes a local origination.
    pub fn withdraw_local(&mut self, nlri: Nlri) -> Option<Option<&Route>> {
        self.adj_in.remove(&(nlri, RouterId::MAX))?;
        self.unindex_peer(RouterId::MAX, nlri);
        self.decide(nlri)
    }

    /// Drops everything heard from `peer` (session reset). Returns the
    /// NLRIs whose best route changed.
    pub fn flush_peer(&mut self, peer: RouterId) -> Vec<Nlri> {
        let Some(gone) = self.by_peer.remove(&peer) else {
            return Vec::new();
        };
        let mut changed = Vec::new();
        for n in gone {
            self.adj_in.remove(&(n, peer));
            if self.decide(n).is_some() {
                changed.push(n);
            }
        }
        changed
    }

    fn unindex_peer(&mut self, peer: RouterId, nlri: Nlri) {
        if let Some(set) = self.by_peer.get_mut(&peer) {
            set.remove(&nlri);
            if set.is_empty() {
                self.by_peer.remove(&peer);
            }
        }
    }

    /// Runs the decision process for one NLRI over the contiguous
    /// `adj_in` range holding its candidates. `Some(best)` if the
    /// selection changed, where `best` is the new best (or `None` if
    /// the NLRI became unreachable).
    fn decide(&mut self, nlri: Nlri) -> Option<Option<&Route>> {
        let mut best: Option<(RouterId, &Route)> = None;
        for ((_, peer), r) in self
            .adj_in
            .range((nlri, RouterId::MIN)..=(nlri, RouterId::MAX))
        {
            match best {
                None => best = Some((*peer, r)),
                Some((_, b)) if prefer(r, b) => best = Some((*peer, r)),
                _ => {}
            }
        }
        let best = best.map(|(peer, r)| (peer, r.clone()));
        let changed = self.loc.get(&nlri) != best.as_ref();
        if changed {
            if let Nlri::Group(p) = nlri {
                self.changed_groups.push(p);
            }
            match best {
                Some(b) => {
                    self.loc.insert(nlri, b);
                    if let Nlri::Group(p) = nlri {
                        self.grib_index.insert(p, ());
                    }
                }
                None => {
                    self.loc.remove(&nlri);
                    if let Nlri::Group(p) = nlri {
                        self.grib_index.remove(&p);
                    }
                }
            }
            Some(self.loc.get(&nlri).map(|(_, r)| r))
        } else {
            None
        }
    }

    /// Drains the group prefixes whose selection changed since the
    /// last drain (in decision order, possibly with duplicates).
    /// Callers holding caches derived from `lookup_group` answers
    /// need only invalidate addresses covered by these prefixes.
    pub fn take_changed_groups(&mut self) -> Vec<Prefix> {
        std::mem::take(&mut self.changed_groups)
    }

    /// True when no group selection changed since the last drain.
    pub fn changed_groups_is_empty(&self) -> bool {
        self.changed_groups.is_empty()
    }

    /// The selected best route for an NLRI.
    pub fn best(&self, nlri: Nlri) -> Option<&Route> {
        self.loc.get(&nlri).map(|(_, r)| r)
    }

    /// The best route and the peer it came from (`RouterId::MAX` when
    /// locally originated).
    pub fn best_with_source(&self, nlri: Nlri) -> Option<(RouterId, &Route)> {
        self.loc.get(&nlri).map(|(p, r)| (*p, r))
    }

    /// Longest-prefix match over the G-RIB: the most specific group
    /// route covering `addr`, found by walking the prefix trie in at
    /// most 32 steps.
    ///
    /// Tie-break is deterministic: longest match first, and among
    /// equal-length matches the lowest base address wins. (Distinct
    /// equal-length prefixes cannot both cover one address, so the
    /// trie's single root-to-leaf walk realises this rule by
    /// construction; the rule is stated so callers and reference
    /// implementations agree on the contract.)
    pub fn lookup_group(&self, addr: McastAddr) -> Option<&Route> {
        let (prefix, ()) = self.grib_index.lookup(addr)?;
        self.loc.get(&Nlri::Group(prefix)).map(|(_, r)| r)
    }

    /// Best route toward a domain (the unicast/M-RIB view).
    pub fn lookup_domain(&self, asn: u32) -> Option<&Route> {
        self.loc.get(&Nlri::Domain(asn)).map(|(_, r)| r)
    }

    /// All selected group routes, most specific first for equal bases.
    pub fn group_routes(&self) -> impl Iterator<Item = (&Prefix, &Route)> {
        self.loc.iter().filter_map(|(n, (_, r))| match n {
            Nlri::Group(p) => Some((p, r)),
            _ => None,
        })
    }

    /// Number of selected group routes — the paper's "G-RIB size"
    /// metric (figure 2(b)). O(1): the trie tracks its entry count.
    pub fn grib_size(&self) -> usize {
        self.grib_index.len()
    }

    /// All selected routes.
    pub fn loc_rib(&self) -> impl Iterator<Item = &Route> {
        self.loc.values().map(|(_, r)| r)
    }

    /// Internal consistency check used by the property tests: the trie
    /// must mirror the Loc-RIB's group entries exactly.
    #[doc(hidden)]
    pub fn check_grib_index(&self) -> bool {
        let in_loc: BTreeSet<Prefix> = self.loc.keys().filter_map(|n| n.as_group()).collect();
        let in_trie: BTreeSet<Prefix> = self.grib_index.iter().map(|(p, _)| p).collect();
        in_loc == in_trie && self.grib_index.len() == in_loc.len()
    }
}

impl snapshot::Snapshot for Rib {
    /// Encodes `adj_in` and `loc` verbatim; the peer reverse index and
    /// the G-RIB trie are derived state, rebuilt on decode.
    fn encode(&self, enc: &mut snapshot::Enc) {
        self.adj_in.encode(enc);
        self.loc.encode(enc);
    }

    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        let adj_in: BTreeMap<(Nlri, RouterId), Route> = snapshot::Snapshot::decode(dec)?;
        let loc: BTreeMap<Nlri, (RouterId, Route)> = snapshot::Snapshot::decode(dec)?;
        let mut by_peer: BTreeMap<RouterId, BTreeSet<Nlri>> = BTreeMap::new();
        for (nlri, peer) in adj_in.keys() {
            by_peer.entry(*peer).or_default().insert(*nlri);
        }
        let mut grib_index = PrefixTrie::new();
        for nlri in loc.keys() {
            if let Nlri::Group(p) = nlri {
                grib_index.insert(*p, ());
            }
        }
        Ok(Rib {
            adj_in,
            by_peer,
            loc,
            grib_index,
            changed_groups: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }
    fn a(s: &str) -> McastAddr {
        let pre: Prefix = format!("{s}/32").parse().unwrap();
        pre.base()
    }

    fn route(pfx: &str, path: &[u32], nh: RouterId) -> Route {
        Route {
            nlri: Nlri::Group(p(pfx)),
            as_path: path.into(),
            next_hop: nh,
            local: false,
            ebgp: true,
        }
    }

    #[test]
    fn best_selection_and_change_reporting() {
        let mut rib = Rib::new();
        // First route: change.
        assert!(rib
            .update_from(1, route("224.0.0.0/16", &[5, 6], 1))
            .is_some());
        // Worse route: no change.
        assert!(rib
            .update_from(2, route("224.0.0.0/16", &[7, 8, 9], 2))
            .is_none());
        // Better route: change.
        assert!(rib.update_from(3, route("224.0.0.0/16", &[4], 3)).is_some());
        assert_eq!(
            rib.best(Nlri::Group(p("224.0.0.0/16"))).unwrap().next_hop,
            3
        );
    }

    #[test]
    fn withdraw_falls_back() {
        let mut rib = Rib::new();
        rib.update_from(1, route("224.0.0.0/16", &[5], 1));
        rib.update_from(2, route("224.0.0.0/16", &[5, 6], 2));
        // Withdraw the best: falls back to peer 2's route.
        let changed = rib.withdraw_from(1, Nlri::Group(p("224.0.0.0/16")));
        assert!(changed.is_some());
        assert_eq!(
            rib.best(Nlri::Group(p("224.0.0.0/16"))).unwrap().next_hop,
            2
        );
        // Withdraw the rest: unreachable.
        assert!(rib
            .withdraw_from(2, Nlri::Group(p("224.0.0.0/16")))
            .is_some());
        assert!(rib.best(Nlri::Group(p("224.0.0.0/16"))).is_none());
        // Withdrawing a non-existent route is a no-op.
        assert!(rib
            .withdraw_from(2, Nlri::Group(p("224.0.0.0/16")))
            .is_none());
    }

    #[test]
    fn local_origination_wins() {
        let mut rib = Rib::new();
        rib.update_from(1, route("224.0.0.0/16", &[5], 1));
        rib.originate(Route::originate(Nlri::Group(p("224.0.0.0/16")), 9, 99));
        assert!(rib.best(Nlri::Group(p("224.0.0.0/16"))).unwrap().local);
        rib.withdraw_local(Nlri::Group(p("224.0.0.0/16")));
        assert_eq!(
            rib.best(Nlri::Group(p("224.0.0.0/16"))).unwrap().next_hop,
            1
        );
    }

    #[test]
    fn longest_prefix_match_paper_example() {
        // §4.2: packets toward 224.0.128.x in domain A follow the /24
        // learned from B even though A itself covers it with its /16.
        let mut rib = Rib::new();
        rib.originate(Route::originate(Nlri::Group(p("224.0.0.0/16")), 1, 10));
        rib.update_from(31, route("224.0.128.0/24", &[2], 31));
        let hit = rib.lookup_group(a("224.0.128.5")).unwrap();
        assert_eq!(hit.nlri.as_group().unwrap(), p("224.0.128.0/24"));
        // Other addresses in the /16 match the /16.
        let hit = rib.lookup_group(a("224.0.1.1")).unwrap();
        assert_eq!(hit.nlri.as_group().unwrap(), p("224.0.0.0/16"));
        // Outside both: no match.
        assert!(rib.lookup_group(a("225.0.0.1")).is_none());
    }

    #[test]
    fn flush_peer_removes_all_its_routes() {
        let mut rib = Rib::new();
        rib.update_from(1, route("224.0.0.0/16", &[5], 1));
        rib.update_from(1, route("225.0.0.0/16", &[5], 1));
        rib.update_from(2, route("224.0.0.0/16", &[5, 6], 2));
        let changed = rib.flush_peer(1);
        assert_eq!(changed.len(), 2);
        assert_eq!(
            rib.best(Nlri::Group(p("224.0.0.0/16"))).unwrap().next_hop,
            2
        );
        assert!(rib.best(Nlri::Group(p("225.0.0.0/16"))).is_none());
    }

    #[test]
    fn domain_routes_coexist_with_group_routes() {
        let mut rib = Rib::new();
        rib.update_from(
            1,
            Route {
                nlri: Nlri::Domain(42),
                as_path: vec![42].into(),
                next_hop: 1,
                local: false,
                ebgp: true,
            },
        );
        rib.update_from(1, route("224.0.0.0/16", &[5], 1));
        assert_eq!(rib.lookup_domain(42).unwrap().next_hop, 1);
        assert!(rib.lookup_domain(43).is_none());
        assert_eq!(rib.grib_size(), 1);
        assert_eq!(rib.loc_rib().count(), 2);
    }

    #[test]
    fn update_same_route_is_no_change() {
        let mut rib = Rib::new();
        let r = route("224.0.0.0/16", &[5], 1);
        assert!(rib.update_from(1, r.clone()).is_some());
        assert!(rib.update_from(1, r).is_none());
    }

    #[test]
    fn grib_index_tracks_loc_rib_through_churn() {
        let mut rib = Rib::new();
        rib.update_from(1, route("224.0.0.0/16", &[5], 1));
        rib.update_from(1, route("224.1.0.0/16", &[5], 1));
        rib.update_from(2, route("224.0.0.0/16", &[5, 6], 2));
        assert!(rib.check_grib_index());
        rib.flush_peer(1);
        assert!(rib.check_grib_index());
        assert_eq!(rib.grib_size(), 1);
        rib.withdraw_from(2, Nlri::Group(p("224.0.0.0/16")));
        assert!(rib.check_grib_index());
        assert_eq!(rib.grib_size(), 0);
        assert!(rib.lookup_group(a("224.0.0.1")).is_none());
    }
}
