//! Export policy: which routes a border router advertises to whom.
//!
//! §2/§4.2 of the paper: multicast policy is realized "through
//! selective propagation of the group routes in BGP", exactly as for
//! unicast — a provider advertises only routes to its own networks and
//! its customers' networks, so only traffic to/from customers transits
//! it.

use serde::{Deserialize, Serialize};

use crate::route::{Asn, Route, RouterId};

/// Commercial relationship of a *peer* to this speaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeerRel {
    /// The peer is our provider.
    Provider,
    /// The peer is our customer.
    Customer,
    /// Settlement-free peer.
    Peer,
    /// Same-domain (iBGP) peer.
    Internal,
}

/// The external-facing classification of a route regardless of iBGP
/// hops: how it entered this *domain*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteSourceKind {
    /// Originated in this domain.
    Local,
    /// Entered the domain from a customer.
    Customer,
    /// Entered the domain from a provider.
    Provider,
    /// Entered the domain from a peer.
    Peer,
}

/// Export policy configuration for a speaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExportPolicy {
    /// Advertise everything to everyone (a policy-free internet; used
    /// by experiments that measure pure tree shape).
    Open,
    /// Gao–Rexford provider/customer rules: to customers export
    /// everything; to providers and peers export only local and
    /// customer routes.
    ProviderCustomer,
}

impl ExportPolicy {
    /// May a route of `kind` be exported to a peer of relationship
    /// `to`? (iBGP propagation is governed separately by the speaker's
    /// full-mesh rule, not by policy.)
    pub fn allows(self, kind: RouteSourceKind, to: PeerRel) -> bool {
        match self {
            ExportPolicy::Open => true,
            ExportPolicy::ProviderCustomer => match to {
                PeerRel::Customer | PeerRel::Internal => true,
                PeerRel::Provider | PeerRel::Peer => {
                    matches!(kind, RouteSourceKind::Local | RouteSourceKind::Customer)
                }
            },
        }
    }
}

/// Classifies a received route by the relationship of the external peer
/// that delivered it into the domain.
pub fn classify(rel: PeerRel) -> RouteSourceKind {
    match rel {
        PeerRel::Customer => RouteSourceKind::Customer,
        PeerRel::Provider => RouteSourceKind::Provider,
        PeerRel::Peer => RouteSourceKind::Peer,
        PeerRel::Internal => RouteSourceKind::Local, // refined by caller
    }
}

/// Per-peer static configuration held by a speaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerConfig {
    /// The peer's router id.
    pub router: RouterId,
    /// The peer's domain.
    pub asn: Asn,
    /// Relationship of the peer to us.
    pub rel: PeerRel,
}

impl PeerConfig {
    /// Is this an iBGP (same-domain) peer?
    pub fn is_internal(&self) -> bool {
        self.rel == PeerRel::Internal
    }
}

impl snapshot::Snapshot for RouteSourceKind {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u8(match self {
            RouteSourceKind::Local => 0,
            RouteSourceKind::Customer => 1,
            RouteSourceKind::Provider => 2,
            RouteSourceKind::Peer => 3,
        });
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(RouteSourceKind::Local),
            1 => Ok(RouteSourceKind::Customer),
            2 => Ok(RouteSourceKind::Provider),
            3 => Ok(RouteSourceKind::Peer),
            _ => Err(snapshot::SnapError::Invalid("RouteSourceKind tag")),
        }
    }
}

/// Extra filtering hook: a predicate over (route, destination peer).
/// Tests and the policy ablation use this to model bespoke filters
/// (e.g. "do not propagate this /24 to that neighbor").
pub type RouteFilter = fn(&Route, &PeerConfig) -> bool;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_policy_allows_all() {
        for kind in [
            RouteSourceKind::Local,
            RouteSourceKind::Customer,
            RouteSourceKind::Provider,
            RouteSourceKind::Peer,
        ] {
            for to in [PeerRel::Provider, PeerRel::Customer, PeerRel::Peer] {
                assert!(ExportPolicy::Open.allows(kind, to));
            }
        }
    }

    #[test]
    fn provider_customer_rules() {
        let p = ExportPolicy::ProviderCustomer;
        // To customers: everything.
        assert!(p.allows(RouteSourceKind::Provider, PeerRel::Customer));
        assert!(p.allows(RouteSourceKind::Peer, PeerRel::Customer));
        // To providers/peers: only local + customer routes.
        assert!(p.allows(RouteSourceKind::Local, PeerRel::Provider));
        assert!(p.allows(RouteSourceKind::Customer, PeerRel::Provider));
        assert!(!p.allows(RouteSourceKind::Provider, PeerRel::Provider));
        assert!(!p.allows(RouteSourceKind::Peer, PeerRel::Provider));
        assert!(!p.allows(RouteSourceKind::Provider, PeerRel::Peer));
        assert!(!p.allows(RouteSourceKind::Peer, PeerRel::Peer));
        assert!(p.allows(RouteSourceKind::Customer, PeerRel::Peer));
    }

    #[test]
    fn classification() {
        assert_eq!(classify(PeerRel::Customer), RouteSourceKind::Customer);
        assert_eq!(classify(PeerRel::Provider), RouteSourceKind::Provider);
        assert_eq!(classify(PeerRel::Peer), RouteSourceKind::Peer);
    }
}
