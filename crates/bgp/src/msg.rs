//! BGP wire messages exchanged between speakers.

use serde::{Deserialize, Serialize};

use crate::policy::RouteSourceKind;
use crate::route::{Nlri, Route, RouterId};

/// A message from one speaker to a specific peer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BgpMsg {
    /// Advertise (or replace) a route. `kind` classifies how the route
    /// entered the sender's domain; it is meaningful only on iBGP
    /// sessions (standing in for the communities real deployments use
    /// to carry this) and ignored on eBGP sessions, where the receiver
    /// classifies by its own relationship to the sender.
    Update {
        /// The route as it should be installed by the receiver.
        route: Route,
        /// Domain-entry classification (iBGP only).
        kind: RouteSourceKind,
    },
    /// Withdraw the sender's route for this NLRI.
    Withdraw(Nlri),
}

/// An outbound message with its destination, as emitted by the sans-io
/// speaker. The host (simulator or tokio actor) owns delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutMsg {
    /// Destination router.
    pub to: RouterId,
    /// Payload.
    pub msg: BgpMsg,
}

impl snapshot::Snapshot for BgpMsg {
    fn encode(&self, enc: &mut snapshot::Enc) {
        match self {
            BgpMsg::Update { route, kind } => {
                enc.u8(0);
                route.encode(enc);
                kind.encode(enc);
            }
            BgpMsg::Withdraw(nlri) => {
                enc.u8(1);
                nlri.encode(enc);
            }
        }
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        match dec.u8()? {
            0 => Ok(BgpMsg::Update {
                route: Route::decode(dec)?,
                kind: snapshot::Snapshot::decode(dec)?,
            }),
            1 => Ok(BgpMsg::Withdraw(Nlri::decode(dec)?)),
            _ => Err(snapshot::SnapError::Invalid("BgpMsg tag")),
        }
    }
}

impl snapshot::Snapshot for OutMsg {
    fn encode(&self, enc: &mut snapshot::Enc) {
        enc.u32(self.to);
        self.msg.encode(enc);
    }
    fn decode(dec: &mut snapshot::Dec<'_>) -> Result<Self, snapshot::SnapError> {
        Ok(OutMsg {
            to: dec.u32()?,
            msg: BgpMsg::decode(dec)?,
        })
    }
}
