//! Property tests for the RIB and aggregation: arbitrary interleavings
//! of updates and withdraws keep the decision process consistent.

use bgp::{aggregate, Nlri, Rib, Route};
use mcast_addr::{McastAddr, Prefix};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (8u8..=28, any::<u32>()).prop_map(|(len, bits)| {
        let addr = 0xE000_0000 | (bits & 0x0FFF_FFFF);
        Prefix::containing(McastAddr(addr), len).unwrap()
    })
}

#[derive(Debug, Clone)]
enum Op {
    Update {
        peer: u32,
        prefix: Prefix,
        path_len: usize,
    },
    Withdraw {
        peer: u32,
        prefix: Prefix,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, arb_prefix(), 1usize..6).prop_map(|(peer, prefix, path_len)| Op::Update {
            peer,
            prefix,
            path_len
        }),
        (0u32..4, arb_prefix()).prop_map(|(peer, prefix)| Op::Withdraw { peer, prefix }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any op sequence, the selected best for every NLRI is the
    /// minimum (by preference) of what remains in Adj-RIB-In — checked
    /// by replaying into a model map.
    #[test]
    fn best_is_always_preference_minimum(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut rib = Rib::new();
        let mut model: std::collections::BTreeMap<(u32, Prefix), Route> = Default::default();
        for op in &ops {
            match op {
                Op::Update { peer, prefix, path_len } => {
                    let route = Route {
                        nlri: Nlri::Group(*prefix),
                        as_path: (0..*path_len as u32).map(|i| i + 10).collect(),
                        next_hop: *peer,
                        local: false,
                        ebgp: true,
                    };
                    model.insert((*peer, *prefix), route.clone());
                    rib.update_from(*peer, route);
                }
                Op::Withdraw { peer, prefix } => {
                    model.remove(&(*peer, *prefix));
                    rib.withdraw_from(*peer, Nlri::Group(*prefix));
                }
            }
        }
        // Every prefix in the model: best must equal the model's best.
        let prefixes: std::collections::BTreeSet<Prefix> =
            model.keys().map(|(_, p)| *p).collect();
        for p in &prefixes {
            let candidates: Vec<&Route> =
                model.iter().filter(|((_, mp), _)| mp == p).map(|(_, r)| r).collect();
            let best = rib.best(Nlri::Group(*p));
            prop_assert!(best.is_some());
            let best = best.unwrap();
            for c in candidates {
                prop_assert!(
                    !bgp::route::prefer(c, best),
                    "rib kept {best:?} but {c:?} is preferred"
                );
            }
        }
        // And nothing else is selected.
        for r in rib.loc_rib() {
            if let Nlri::Group(p) = r.nlri {
                prop_assert!(prefixes.contains(&p), "stale selection {p}");
            }
        }
    }

    /// Longest-prefix match always returns the most specific covering
    /// selected route.
    #[test]
    fn lpm_is_most_specific(prefixes in prop::collection::vec(arb_prefix(), 1..20)) {
        let mut rib = Rib::new();
        for (i, p) in prefixes.iter().enumerate() {
            rib.update_from(1, Route {
                nlri: Nlri::Group(*p),
                as_path: vec![i as u32 + 2].into(),
                next_hop: 1,
                local: false,
                ebgp: true,
            });
        }
        let probe = prefixes[0].base();
        let hit = rib.lookup_group(probe).expect("covering route exists");
        let hit_p = hit.nlri.as_group().unwrap();
        prop_assert!(hit_p.contains(probe));
        for p in &prefixes {
            if p.contains(probe) {
                prop_assert!(p.len() <= hit_p.len(), "{p} is more specific than {hit_p}");
            }
        }
    }

    /// Aggregation preserves coverage exactly: an address is covered by
    /// the aggregate iff it was covered by the input.
    #[test]
    fn aggregate_preserves_coverage(
        prefixes in prop::collection::vec(arb_prefix(), 1..16),
        probes in prop::collection::vec(any::<u32>(), 16),
    ) {
        let agg = aggregate(&prefixes);
        // Output is non-overlapping.
        for (i, a) in agg.iter().enumerate() {
            for b in agg.iter().skip(i + 1) {
                prop_assert!(!a.overlaps(b));
            }
        }
        prop_assert!(agg.len() <= prefixes.len());
        for bits in probes {
            let addr = McastAddr(0xE000_0000 | (bits & 0x0FFF_FFFF));
            let in_input = prefixes.iter().any(|p| p.contains(addr));
            let in_agg = agg.iter().any(|p| p.contains(addr));
            prop_assert_eq!(in_input, in_agg, "coverage changed at {}", addr);
        }
    }

    /// flush_peer is equivalent to withdrawing everything that peer
    /// contributed.
    #[test]
    fn flush_equals_withdraw_all(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut a = Rib::new();
        let mut b = Rib::new();
        let mut peer1: std::collections::BTreeSet<Prefix> = Default::default();
        for op in &ops {
            match op {
                Op::Update { peer, prefix, path_len } => {
                    let route = Route {
                        nlri: Nlri::Group(*prefix),
                        as_path: (0..*path_len as u32).map(|i| i + 10).collect(),
                        next_hop: *peer,
                        local: false,
                        ebgp: true,
                    };
                    a.update_from(*peer, route.clone());
                    b.update_from(*peer, route);
                    if *peer == 1 { peer1.insert(*prefix); }
                }
                Op::Withdraw { peer, prefix } => {
                    a.withdraw_from(*peer, Nlri::Group(*prefix));
                    b.withdraw_from(*peer, Nlri::Group(*prefix));
                    if *peer == 1 { peer1.remove(prefix); }
                }
            }
        }
        a.flush_peer(1);
        for p in peer1 {
            b.withdraw_from(1, Nlri::Group(p));
        }
        let av: Vec<_> = a.loc_rib().cloned().collect();
        let bv: Vec<_> = b.loc_rib().cloned().collect();
        prop_assert_eq!(av, bv);
    }
}

// ---------------------------------------------------------------------
// Trie LPM vs linear reference
// ---------------------------------------------------------------------

/// Prefixes drawn from a small pool of bases at many lengths, so
/// inserts and removes collide and nest often.
fn arb_pool_prefix() -> impl Strategy<Value = Prefix> {
    (4u8..=32, 0u32..6).prop_map(|(len, i)| {
        let addr = 0xE000_0000 | (i.wrapping_mul(0x0123_4567) & 0x0FFF_FFFF);
        Prefix::containing(McastAddr(addr), len).unwrap()
    })
}

#[derive(Debug, Clone)]
enum TrieOp {
    Insert { prefix: Prefix, val: u32 },
    Remove { prefix: Prefix },
}

fn arb_trie_op() -> impl Strategy<Value = TrieOp> {
    prop_oneof![
        (arb_pool_prefix(), any::<u32>()).prop_map(|(prefix, val)| TrieOp::Insert { prefix, val }),
        arb_pool_prefix().prop_map(|prefix| TrieOp::Remove { prefix }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The trie's longest-prefix match is exactly the linear-scan
    /// reference, including the documented tie-break: longest match
    /// wins; among equal-length covering prefixes the lowest base wins
    /// (vacuous for distinct prefixes, but the reference encodes the
    /// contract explicitly so a regression cannot hide behind it).
    #[test]
    fn trie_lpm_equals_linear_scan(
        ops in prop::collection::vec(arb_trie_op(), 1..60),
        probes in prop::collection::vec((0u32..6, any::<u32>()), 16),
    ) {
        let mut trie: bgp::PrefixTrie<u32> = bgp::PrefixTrie::new();
        let mut reference: std::collections::BTreeMap<Prefix, u32> = Default::default();
        for op in &ops {
            match op {
                TrieOp::Insert { prefix, val } => {
                    prop_assert_eq!(trie.insert(*prefix, *val), reference.insert(*prefix, *val));
                }
                TrieOp::Remove { prefix } => {
                    prop_assert_eq!(trie.remove(prefix), reference.remove(prefix));
                }
            }
            prop_assert_eq!(trie.len(), reference.len());
        }
        // Exact retrieval agrees entry by entry.
        for (p, v) in &reference {
            prop_assert_eq!(trie.get(p), Some(v));
        }
        // LPM agrees on probes biased into the pool bases.
        for (i, off) in &probes {
            let base = i.wrapping_mul(0x0123_4567);
            let addr = McastAddr(0xE000_0000 | (base.wrapping_add(off & 0xFFFF) & 0x0FFF_FFFF));
            let linear = reference
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by(|(a, _), (b, _)| {
                    a.len()
                        .cmp(&b.len())
                        .then(b.base_u32().cmp(&a.base_u32()))
                })
                .map(|(p, v)| (*p, *v));
            let got = trie.lookup(addr).map(|(p, v)| (p, *v));
            prop_assert_eq!(got, linear, "LPM diverged at {}", addr);
        }
    }

    /// Churn: arbitrary interleavings of updates, withdraws, session
    /// flushes, and re-advertisements leave the RIB identical to a
    /// naive reference that recomputes everything from a flat
    /// (peer, prefix) → route map — including the G-RIB trie index and
    /// its lookups.
    #[test]
    fn churn_matches_naive_reference(
        ops in prop::collection::vec(arb_churn_op(), 1..80),
        probes in prop::collection::vec((0u32..6, any::<u32>()), 8),
    ) {
        let mut rib = Rib::new();
        let mut model: std::collections::BTreeMap<(u32, Prefix), Route> = Default::default();
        for op in &ops {
            match op {
                ChurnOp::Update { peer, prefix, path_len } => {
                    let route = Route {
                        nlri: Nlri::Group(*prefix),
                        as_path: (0..*path_len as u32).map(|i| i + 10).collect(),
                        next_hop: *peer,
                        local: false,
                        ebgp: true,
                    };
                    model.insert((*peer, *prefix), route.clone());
                    rib.update_from(*peer, route);
                }
                ChurnOp::Withdraw { peer, prefix } => {
                    model.remove(&(*peer, *prefix));
                    rib.withdraw_from(*peer, Nlri::Group(*prefix));
                }
                ChurnOp::Flush { peer } => {
                    model.retain(|(p, _), _| p != peer);
                    rib.flush_peer(*peer);
                }
            }
            // The trie index must mirror the Loc-RIB after every step.
            prop_assert!(rib.check_grib_index());
        }
        // Selected best per prefix equals the naive decision over the
        // model (same iteration order: peer ascending).
        let prefixes: std::collections::BTreeSet<Prefix> =
            model.keys().map(|(_, p)| *p).collect();
        for p in &prefixes {
            let mut best: Option<&Route> = None;
            for ((_, mp), r) in &model {
                if mp != p {
                    continue;
                }
                match best {
                    None => best = Some(r),
                    Some(b) if bgp::route::prefer(r, b) => best = Some(r),
                    _ => {}
                }
            }
            prop_assert_eq!(rib.best(Nlri::Group(*p)), best);
        }
        prop_assert_eq!(rib.grib_size(), prefixes.len());
        for r in rib.loc_rib() {
            if let Nlri::Group(p) = r.nlri {
                prop_assert!(prefixes.contains(&p), "stale selection {}", p);
            }
        }
        // lookup_group equals a linear scan over the selected routes.
        for (i, off) in &probes {
            let base = i.wrapping_mul(0x0123_4567);
            let addr = McastAddr(0xE000_0000 | (base.wrapping_add(off & 0xFFFF) & 0x0FFF_FFFF));
            let linear = rib
                .group_routes()
                .filter(|(p, _)| p.contains(addr))
                .max_by(|(a, _), (b, _)| {
                    a.len()
                        .cmp(&b.len())
                        .then(b.base_u32().cmp(&a.base_u32()))
                })
                .map(|(_, r)| r);
            prop_assert_eq!(rib.lookup_group(addr), linear, "lookup diverged at {}", addr);
        }
    }
}

#[derive(Debug, Clone)]
enum ChurnOp {
    Update {
        peer: u32,
        prefix: Prefix,
        path_len: usize,
    },
    Withdraw {
        peer: u32,
        prefix: Prefix,
    },
    Flush {
        peer: u32,
    },
}

fn arb_churn_op() -> impl Strategy<Value = ChurnOp> {
    prop_oneof![
        (0u32..4, arb_pool_prefix(), 1usize..6).prop_map(|(peer, prefix, path_len)| {
            ChurnOp::Update {
                peer,
                prefix,
                path_len,
            }
        }),
        (0u32..4, arb_pool_prefix()).prop_map(|(peer, prefix)| ChurnOp::Withdraw { peer, prefix }),
        (0u32..4).prop_map(|peer| ChurnOp::Flush { peer }),
    ]
}
