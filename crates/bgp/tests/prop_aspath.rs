//! Equivalence properties for the interned [`AsPath`]: under arbitrary
//! construction and churn it must be observationally identical to the
//! owned `Vec<Asn>` representation it replaced — equality, ordering,
//! hashing, prepend, and both wire encodings.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use bgp::{AsPath, Asn};
use proptest::prelude::*;
use snapshot::{Dec, Enc, Snapshot};

/// Short element range so random paths collide often — interning only
/// matters when distinct call sites produce equal paths.
fn arb_path() -> impl Strategy<Value = Vec<Asn>> {
    prop::collection::vec(0u32..8, 0..6)
}

fn hash_of<T: Hash>(t: &T) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Interned equality is exactly vector equality, and equal paths
    /// hash equal (the intern table and RIB maps rely on both).
    #[test]
    fn eq_and_hash_match_owned(a in arb_path(), b in arb_path()) {
        let ia = AsPath::from(a.clone());
        let ib = AsPath::from(b.clone());
        prop_assert_eq!(ia == ib, a == b);
        prop_assert_eq!(&ia, &a);
        if a == b {
            prop_assert_eq!(hash_of(&ia), hash_of(&ib));
        }
        // Deref exposes the identical slice, so any ordering a caller
        // derives from the elements matches the owned representation.
        prop_assert_eq!(&ia[..], &a[..]);
        prop_assert_eq!(ia[..].cmp(&ib[..]), a.cmp(&b));
    }

    /// `prepend` is concatenation, and re-interning the concatenation
    /// yields the same (pointer-shared) path.
    #[test]
    fn prepend_is_concat(path in arb_path(), asn in 0u32..8) {
        let interned = AsPath::from(path.clone()).prepend(asn);
        let mut owned = vec![asn];
        owned.extend_from_slice(&path);
        prop_assert_eq!(&interned, &owned);
        prop_assert_eq!(interned, AsPath::from(owned));
    }

    /// The snapshot encoding is byte-identical to `Vec<Asn>` framing
    /// and round-trips, so checkpoints taken before interning restore
    /// after it (and vice versa).
    #[test]
    fn snapshot_encoding_matches_vec(path in arb_path()) {
        let interned = AsPath::from(path.clone());
        let mut enc = Enc::new();
        interned.encode(&mut enc);
        let via_interned = enc.finish();

        let mut enc = Enc::new();
        path.encode(&mut enc);
        let via_vec = enc.finish();
        prop_assert_eq!(&via_interned, &via_vec);

        let mut dec = Dec::new(&via_interned);
        let back = AsPath::decode(&mut dec).unwrap();
        prop_assert_eq!(back, interned);
    }

    /// The serde value tree is element-wise identical to the owned
    /// representation and round-trips.
    #[test]
    fn serde_value_matches_vec(path in arb_path()) {
        use serde::{Deserialize, Serialize};
        let interned = AsPath::from(path.clone());
        let v = interned.to_value();
        prop_assert_eq!(format!("{:?}", v), format!("{:?}", path[..].to_value()));
        let back = AsPath::from_value(&v).unwrap();
        prop_assert_eq!(back, interned);
    }

    /// Churn: building the same path many times (in any interleaving
    /// with other paths) always yields equal, interchangeable values.
    #[test]
    fn interning_is_stable_under_churn(paths in prop::collection::vec(arb_path(), 1..40)) {
        let first: Vec<AsPath> = paths.iter().cloned().map(AsPath::from).collect();
        // Rebuild in reverse order so the intern table is hit in a
        // different sequence.
        let second: Vec<AsPath> = paths
            .iter()
            .rev()
            .cloned()
            .map(AsPath::from)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        for ((a, b), owned) in first.iter().zip(&second).zip(&paths) {
            prop_assert_eq!(a, b);
            prop_assert_eq!(a, owned);
        }
    }
}
