//! Session liveness under injected keepalive loss.
//!
//! Two simnet nodes each drive a [`bgp::Session`] over a link whose
//! fault model drops keepalives. The sessions must establish when the
//! link is clean, declare the peer dead (hold expiry → `Down`) under
//! total loss, keep retrying through Idle → Connecting → hold-expiry
//! cycles, and re-establish once the loss clears — deterministically
//! for a fixed seed.

use bgp::session::{Session, SessionAction, SessionEvent, SessionTimers};
use simnet::{Ctx, Engine, FaultModel, Node, NodeId, SimDuration, SimTime};

#[derive(Debug, Clone, PartialEq)]
struct Keepalive;

const TICK: u64 = 1; // KEY for the 1 s session tick

fn timers() -> SessionTimers {
    SessionTimers {
        keepalive: 5,
        hold: 15,
        retry: 10,
    }
}

/// One endpoint: a session plus a log of its lifecycle actions.
struct Endpoint {
    peer: NodeId,
    sess: Session,
    /// (time-secs, action) for every Up/Down transition.
    log: Vec<(u64, &'static str)>,
}

impl Endpoint {
    fn new(peer: NodeId) -> Self {
        Endpoint {
            peer,
            sess: Session::new(timers()),
            log: Vec::new(),
        }
    }

    fn apply(&mut self, now: u64, action: SessionAction, ctx: &mut Ctx<'_, Keepalive>) {
        match action {
            SessionAction::SendKeepalive => ctx.send(self.peer, Keepalive),
            SessionAction::Up => self.log.push((now, "up")),
            SessionAction::Down => self.log.push((now, "down")),
            SessionAction::None => {}
        }
    }
}

impl Node<Keepalive> for Endpoint {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Keepalive>) {
        ctx.set_timer(SimDuration::from_secs(1), TICK);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Keepalive>, _from: NodeId, _msg: Keepalive) {
        let now = ctx.now().as_secs();
        let a = self.sess.on_event(now, SessionEvent::MessageReceived);
        self.apply(now, a, ctx);
        // Answer so the opener's Connecting half can establish too.
        if self.sess.is_established() {
            ctx.send(self.peer, Keepalive);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Keepalive>, key: u64) {
        if key != TICK {
            return;
        }
        let now = ctx.now().as_secs();
        if self.sess.state() == bgp::session::SessionState::Idle && now >= self.sess.retry_at() {
            let a = self.sess.on_event(now, SessionEvent::TransportUp);
            self.apply(now, a, ctx);
        } else {
            let a = self.sess.on_tick(now);
            self.apply(now, a, ctx);
        }
        ctx.set_timer(SimDuration::from_secs(1), TICK);
    }
}

struct Outcome {
    log_a: Vec<(u64, &'static str)>,
    log_b: Vec<(u64, &'static str)>,
    established: bool,
    lost: u64,
}

fn run(seed: u64) -> Outcome {
    let mut eng: Engine<Keepalive> = Engine::new(seed, SimDuration::from_millis(10));
    let a = eng.add_node_with(|_| Box::new(Endpoint::new(NodeId(1))));
    let b = eng.add_node_with(|_| Box::new(Endpoint::new(NodeId(0))));

    // Phase 1 — clean link: both sides establish.
    eng.run_until(SimTime(20_000));
    assert!(eng.node_as::<Endpoint>(a).unwrap().sess.is_established());
    assert!(eng.node_as::<Endpoint>(b).unwrap().sess.is_established());

    // Phase 2 — total keepalive loss: hold expires on both sides, and
    // the retry cycle spins without ever re-establishing.
    eng.faults_mut()
        .set_link_model(a, b, FaultModel::lossy(1.0));
    eng.run_until(SimTime(80_000));
    assert!(!eng.node_as::<Endpoint>(a).unwrap().sess.is_established());
    assert!(!eng.node_as::<Endpoint>(b).unwrap().sess.is_established());

    // Phase 3 — loss clears: the next retry re-establishes.
    eng.faults_mut().clear_models();
    eng.run_until(SimTime(120_000));

    let lost = eng.faults().stats().lost;
    let ea = eng.node_as::<Endpoint>(a).unwrap();
    let eb = eng.node_as::<Endpoint>(b).unwrap();
    Outcome {
        log_a: ea.log.clone(),
        log_b: eb.log.clone(),
        established: ea.sess.is_established() && eb.sess.is_established(),
        lost,
    }
}

#[test]
fn sessions_survive_loss_and_reestablish() {
    let out = run(42);
    assert!(out.established, "sessions must re-establish after loss");
    assert!(out.lost > 0, "the loss model must actually have fired");
    for log in [&out.log_a, &out.log_b] {
        let ups = log.iter().filter(|(_, w)| *w == "up").count();
        let downs = log.iter().filter(|(_, w)| *w == "down").count();
        assert!(ups >= 2, "establish, die, re-establish: {log:?}");
        assert_eq!(downs, 1, "exactly one hold-expiry death: {log:?}");
        // The death happens within one hold time of the loss onset.
        let (t_down, _) = log.iter().find(|(_, w)| *w == "down").unwrap();
        assert!(
            (20..=20 + timers().hold + 1).contains(t_down),
            "hold expiry at {t_down}s"
        );
    }
}

#[test]
fn chaos_trace_is_seed_deterministic() {
    let x = run(7);
    let y = run(7);
    assert_eq!(x.log_a, y.log_a);
    assert_eq!(x.log_b, y.log_b);
    assert_eq!(x.lost, y.lost);
}
