//! # masc-bgmp — a reproduction of the MASC/BGMP architecture
//!
//! This is a from-scratch Rust implementation of *The MASC/BGMP
//! Architecture for Inter-domain Multicast Routing* (Kumar,
//! Radoslavov, Thaler, Alaettinoglu, Estrin, Handley; SIGCOMM 1998):
//!
//! * **MASC** — hierarchical, decentralized multicast address
//!   allocation by claim–collide ([`masc`]);
//! * **BGMP** — bidirectional inter-domain shared trees rooted at each
//!   group's root domain, with source-specific branches ([`bgmp`]);
//! * the **BGP substrate** carrying group routes between them
//!   ([`bgp`]), five intra-domain multicast protocols ([`migp`]), the
//!   address arithmetic ([`mcast_addr`]), a deterministic
//!   discrete-event simulator ([`simnet`]), AS-level topologies
//!   ([`topology`]), and the integrated architecture gluing it all
//!   together ([`core`]).
//!
//! Quick start (see `examples/quickstart.rs` for the runnable
//! version):
//!
//! ```
//! use masc_bgmp::core::{Addressing, BorderPlan, HostId, Internet, InternetConfig};
//! use masc_bgmp::migp::MigpKind;
//! use masc_bgmp::topology::{hierarchical, HierSpec};
//!
//! // A small provider hierarchy with live BGP + BGMP + DVMRP.
//! let h = hierarchical(&HierSpec { fanouts: vec![2, 2], mesh_top: true });
//! let cfg = InternetConfig {
//!     migp: MigpKind::Dvmrp,
//!     borders: BorderPlan::PerEdge,
//!     addressing: Addressing::Static,
//!     ..Default::default()
//! };
//! let mut net = Internet::build(h.graph.clone(), &cfg);
//! net.converge();
//!
//! // A group rooted in the first child domain; a member elsewhere.
//! let root = h.levels[1][0];
//! let g = net.group_addr(root);
//! let member = HostId { domain: masc_bgmp::core::asn_of(h.levels[1][3]), host: 1 };
//! net.host_join(member, g);
//! net.converge();
//!
//! // A non-member sender reaches the member through the shared tree.
//! let sender = HostId { domain: masc_bgmp::core::asn_of(h.levels[0][1]), host: 7 };
//! let id = net.send_data(sender, g);
//! net.converge();
//! assert_eq!(net.deliveries(id), vec![member]);
//! ```

pub use bgmp;
pub use bgp;
pub use bier;
pub use masc;
pub use masc_bgmp_actors as actors;
pub use masc_bgmp_core as core;
pub use mcast_addr;
pub use metrics;
pub use migp;
pub use simnet;
pub use snapshot;
pub use topology;
