//! Multicast policy by selective group-route propagation (§2, §4.2):
//! a provider carries only its customers' multicast traffic, enforced
//! with the SAME export machinery as unicast BGP.
//!
//! Run with: `cargo run --example policy_routing`

use masc_bgmp::bgp::ExportPolicy;
use masc_bgmp::core::{Addressing, BorderPlan, Internet, InternetConfig};
use masc_bgmp::migp::MigpKind;
use masc_bgmp::topology::DomainGraph;

fn build_graph() -> (DomainGraph, Vec<&'static str>) {
    // Three providers in a peering ring; one customer each.
    let names = vec!["P1", "P2", "P3", "C1", "C2", "C3"];
    let mut g = DomainGraph::new();
    let ids: Vec<_> = names.iter().map(|n| g.add_domain(*n)).collect();
    g.add_peering(ids[0], ids[1]);
    g.add_peering(ids[1], ids[2]);
    g.add_peering(ids[2], ids[0]);
    g.add_provider_customer(ids[0], ids[3]);
    g.add_provider_customer(ids[1], ids[4]);
    g.add_provider_customer(ids[2], ids[5]);
    (g, names)
}

fn reach_matrix(net: &Internet, names: &[&str]) {
    println!(
        "      {}",
        names.iter().map(|n| format!("{n:>4}")).collect::<String>()
    );
    for d in net.graph.domains() {
        let mut row = format!("{:>4}  ", names[d.0]);
        for other in net.graph.domains() {
            let range = net.static_ranges[other.0].unwrap();
            let reaches = net.domain(d).routers.iter().any(|br| {
                br.speaker
                    .rib()
                    .lookup_group(range.base())
                    .is_some_and(|r| r.nlri.as_group().is_some_and(|p| p == range))
            });
            row.push_str(if reaches { "   x" } else { "   ." });
        }
        println!("{row}");
    }
}

fn main() {
    let (graph, names) = build_graph();

    for (label, policy) in [
        ("Open export (no policy)", ExportPolicy::Open),
        (
            "Provider/customer (Gao-Rexford) export",
            ExportPolicy::ProviderCustomer,
        ),
    ] {
        let cfg = InternetConfig {
            policy,
            migp: MigpKind::Cbt,
            borders: BorderPlan::Single,
            addressing: Addressing::Static,
            ..Default::default()
        };
        let mut net = Internet::build(graph.clone(), &cfg);
        net.converge();
        println!("== {label}");
        println!("   rows: domain; columns: whose group routes its G-RIB holds");
        reach_matrix(&net, &names);
        println!();
    }

    println!("under provider/customer rules, C1's groups are visible at P1 (its");
    println!("provider), at P2 and P3 (P1 exports customer routes to peers), but");
    println!("C2 cannot see C3's groups through P2-P3: P2 refuses to re-export a");
    println!("peer-learned route to another peer — its resources only carry");
    println!("traffic to or from ITS customers (§2). Policies fragment the reach,");
    println!("which is exactly the trade-off the paper warns 'baroque policies'");
    println!("create for a shared tree.");
}
