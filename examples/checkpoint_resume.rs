//! Checkpoint, kill, resume, bisect: the snapshot subsystem's whole
//! lifecycle on a 20-domain internet.
//!
//! 1. run a 20-domain network with sessions and members, taking a
//!    checkpoint every 10 simulated seconds;
//! 2. "kill" the process (drop the network mid-run);
//! 3. resume the latest checkpoint onto a freshly built shell and
//!    finish the run — landing on the exact state fingerprint an
//!    uninterrupted run reaches;
//! 4. seed a structural violation and let `snapshot::bisect` localise
//!    it to one checkpoint interval, with the trace window attached.
//!
//! Run with: `cargo run --example checkpoint_resume`

use masc_bgmp::bgmp::Target;
use masc_bgmp::core::chaos::{chaos_session_timers, state_fingerprint};
use masc_bgmp::core::invariants::check_quiescent;
use masc_bgmp::core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig};
use masc_bgmp::simnet::SimDuration;
use masc_bgmp::snapshot::bisect;
use masc_bgmp::topology::{DomainGraph, DomainId};

const DOMAINS: usize = 20;
const CP_EVERY_MS: u64 = 10_000;
const END_MS: u64 = 60_000;
const INJECT_MS: u64 = 43_000; // only the bisect phase applies this

/// Construction-time inputs — everything a resuming process must
/// rebuild itself; the snapshot carries only what time has changed.
fn build() -> (Internet, Vec<DomainId>) {
    let mut g = DomainGraph::new();
    let ids: Vec<DomainId> = (0..DOMAINS)
        .map(|i| g.add_domain(format!("D{i}")))
        .collect();
    for i in 0..DOMAINS {
        g.add_peering(ids[i], ids[(i + 1) % DOMAINS]);
        // Chords give the ring alternate paths, like figure 1.
        if i % 5 == 0 && i < DOMAINS / 2 {
            g.add_peering(ids[i], ids[i + DOMAINS / 2]);
        }
    }
    let cfg = InternetConfig {
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        sessions: Some(chaos_session_timers()),
        seed: 42,
        ..Default::default()
    };
    let mut net = Internet::build(g, &cfg);
    net.engine.enable_trace(2048);
    (net, ids)
}

/// Brings a fresh shell to the run's starting line (converged, one
/// group, a member in every domain).
fn setup(net: &mut Internet, ids: &[DomainId]) -> masc_bgmp::mcast_addr::McastAddr {
    net.converge();
    let g = net.group_addr(ids[0]);
    for d in ids {
        net.host_join(
            HostId {
                domain: asn_of(*d),
                host: 1,
            },
            g,
        );
    }
    net.converge();
    g
}

fn main() {
    // ---- 1. The long run, checkpointed every 10 s ----------------
    let (mut net, ids) = build();
    let g = setup(&mut net, &ids);
    let t0 = net.engine.now();
    println!(
        "20-domain internet up: group {:?}, {} members, checkpoints every {} s",
        g,
        ids.len(),
        CP_EVERY_MS / 1000
    );

    let mut checkpoints: Vec<(u64, Vec<u8>)> = Vec::new();
    for k in 1..=(END_MS / CP_EVERY_MS) {
        let at = k * CP_EVERY_MS;
        net.engine.run_until(t0 + SimDuration::from_millis(at));
        let blob = net.checkpoint().expect("checkpoint");
        println!("  checkpoint @ {:>2} s: {} bytes", at / 1000, blob.len());
        checkpoints.push((at, blob));
        if at == 30_000 {
            break; // ---- 2. "kill" the process mid-run -----------
        }
    }
    let reference = state_fingerprint(&net);
    drop(net);
    println!("process killed at 30 s (state dropped); resuming from disk image...");

    // ---- 3. Resume the latest checkpoint and finish --------------
    let (tick, blob) = checkpoints.last().expect("have a checkpoint");
    let (mut resumed, _ids2) = build();
    resumed.resume_from(blob).expect("resume");
    assert_eq!(
        state_fingerprint(&resumed),
        reference,
        "resume must land exactly where the killed process stopped"
    );
    println!(
        "resumed @ {} s: fingerprint matches the killed run",
        tick / 1000
    );
    for k in (tick / CP_EVERY_MS + 1)..=(END_MS / CP_EVERY_MS) {
        let at = k * CP_EVERY_MS;
        resumed.engine.run_until(t0 + SimDuration::from_millis(at));
        checkpoints.push((at, resumed.checkpoint().expect("checkpoint")));
    }
    assert!(check_quiescent(&resumed).is_empty());
    println!(
        "finished at {} s: fingerprint {:#018x}, invariants clean",
        END_MS / 1000,
        state_fingerprint(&resumed)
    );

    // ---- 4. Bisect a seeded failure ------------------------------
    // Replay the run once more, wedging a stray child (a router id no
    // domain owns) into a (*,G) entry at 43 s. The final state is
    // dirty; which 10 s interval broke it?
    println!(
        "\nseeding a structural violation at {} s and re-running...",
        INJECT_MS / 1000
    );
    let replay_to = |to_ms: u64| -> Internet {
        let (mut n, is) = build();
        setup(&mut n, &is);
        if to_ms >= INJECT_MS {
            n.engine.run_until(t0 + SimDuration::from_millis(INJECT_MS));
            let actor = n.domain_mut(is[3]);
            let br = &mut actor.routers[0];
            if let Some(e) = br.bgmp.table_mut().star_exact_mut(g) {
                e.children.insert(Target::Peer(999_999));
            }
        }
        n.engine.run_until(t0 + SimDuration::from_millis(to_ms));
        n
    };
    let broken = replay_to(END_MS);
    assert!(!check_quiescent(&broken).is_empty(), "violation surfaced");
    let cps: Vec<(u64, Vec<u8>)> = (1..=(END_MS / CP_EVERY_MS))
        .map(|k| {
            let at = k * CP_EVERY_MS;
            (at, replay_to(at).checkpoint().expect("checkpoint"))
        })
        .collect();

    let report = bisect(
        &cps,
        END_MS,
        |blob| {
            let (mut probe, _) = build();
            probe.resume_from(blob)?;
            Ok::<_, masc_bgmp::snapshot::SnapError>(
                check_quiescent(&probe)
                    .iter()
                    .map(|v| format!("{v:?}"))
                    .collect(),
            )
        },
        |blob, to| {
            let (mut probe, pis) = build();
            probe.resume_from(blob)?;
            let from = probe.engine.now();
            let from_rel = from.as_millis() - t0.as_millis();
            // Replays re-apply the external stimulus, so the guilty
            // interval reproduces the violation under trace.
            if from_rel <= INJECT_MS && INJECT_MS < to {
                probe
                    .engine
                    .run_until(t0 + SimDuration::from_millis(INJECT_MS));
                let br = &mut probe.domain_mut(pis[3]).routers[0];
                if let Some(e) = br.bgmp.table_mut().star_exact_mut(g) {
                    e.children.insert(Target::Peer(999_999));
                }
            }
            probe.engine.run_until(t0 + SimDuration::from_millis(to));
            let window: Vec<(u64, String)> = probe
                .engine
                .trace()
                .expect("trace enabled")
                .lines()
                .filter(|(at, _)| *at >= from)
                .map(|(at, l)| (at.as_millis() - t0.as_millis(), l.to_string()))
                .collect();
            let v = check_quiescent(&probe)
                .iter()
                .map(|v| format!("{v:?}"))
                .collect();
            Ok((v, window))
        },
    )
    .expect("search runs")
    .expect("checkpoints exist");

    println!(
        "bisect: broke in ({} s, {} s] using {} probes of {} checkpoints",
        report.from_tick / 1000,
        report.to_tick / 1000,
        report.probes.len(),
        cps.len()
    );
    println!(
        "  violation: {}",
        report
            .violations
            .first()
            .map(String::as_str)
            .unwrap_or("(at checkpoint)")
    );
    println!(
        "  trace window: {} lines across the guilty interval",
        report.trace_window.len()
    );
    assert!(report.from_tick <= INJECT_MS && INJECT_MS <= report.to_tick);
}
