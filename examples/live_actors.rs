//! The protocol engines over real TCP: each border router is a tokio
//! task with persistent peering sessions (§5.2), exchanging BGP group
//! routes, BGMP joins, and multicast data on localhost.
//!
//! Run with: `cargo run --example live_actors`

use masc_bgmp::actors::{ActorNet, Cmd};
use masc_bgmp::bgp::ExportPolicy;
use masc_bgmp::topology::DomainGraph;

#[tokio::main]
async fn main() {
    // The paper's figure-1 skeleton: backbone A; regionals B and C;
    // F under B; G under C.
    let mut g = DomainGraph::new();
    let a = g.add_domain("A");
    let b = g.add_domain("B");
    let c = g.add_domain("C");
    let f = g.add_domain("F");
    let gg = g.add_domain("G");
    g.add_provider_customer(a, b);
    g.add_provider_customer(a, c);
    g.add_provider_customer(b, f);
    g.add_provider_customer(c, gg);

    println!("starting 5 border-router actors on localhost...");
    let net = ActorNet::start(&g, ExportPolicy::Open)
        .await
        .expect("start actors");
    for (i, h) in net.routers.iter().enumerate() {
        println!(
            "  {} listening on {} advertising {}",
            g.name(topology::DomainId(i)),
            h.spec.listen,
            net.ranges[i]
        );
    }

    // Wait for BGP to converge over the real sockets.
    let n = g.len();
    assert!(
        net.wait_until(|_, s| s.grib.len() >= n).await,
        "BGP convergence"
    );
    println!("BGP converged: every router holds {n} group routes");

    // A group rooted in B; F and G join.
    let group = net.ranges[1].base();
    println!("group {group} rooted in B (address from B's range)");
    for i in [1usize, 3, 4] {
        net.routers[i]
            .cmd
            .send(Cmd::JoinGroup(group))
            .await
            .unwrap();
    }
    assert!(
        net.wait_until(|i, s| if i <= 4 {
            s.star_groups.contains(&group)
        } else {
            true
        })
        .await,
        "tree formation"
    );
    println!("shared tree spans A, B, C, F, G (BGMP joins travelled over TCP)");

    // G multicasts; B and F receive.
    net.routers[4]
        .cmd
        .send(Cmd::SendData { group, id: 7 })
        .await
        .unwrap();
    assert!(
        net.wait_until(|i, s| match i {
            1 | 3 => s.delivered.contains(&(7, group)),
            _ => true,
        })
        .await,
        "delivery"
    );
    println!("data from G delivered to members in B and F — bidirectionally, without");
    println!("detouring through any third-party root.");
    net.stop().await;
    println!("actors shut down cleanly.");
}
