//! Quickstart: build a small internet, create a group, join members,
//! send data, and inspect the tree — the paper's core loop in ~60
//! lines.
//!
//! Run with: `cargo run --example quickstart`

use masc_bgmp::core::analysis::{shared_tree_edges, verify_tree};
use masc_bgmp::core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig};
use masc_bgmp::migp::MigpKind;
use masc_bgmp::topology::{hierarchical, HierSpec};

fn main() {
    // 1. An inter-domain topology: 3 meshed backbones, 3 customers
    //    each (the shape of the paper's figure 1).
    let h = hierarchical(&HierSpec {
        fanouts: vec![3, 3],
        mesh_top: true,
    });
    println!(
        "built {} domains / {} inter-domain links",
        h.graph.len(),
        h.graph.edge_count()
    );

    // 2. A live internet: per-edge border routers, BGP with group
    //    routes, BGMP on every border router, DVMRP inside domains.
    let cfg = InternetConfig {
        migp: MigpKind::Dvmrp,
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(h.graph.clone(), &cfg);
    net.converge();
    println!("BGP converged ({} events)", net.engine.stats().events);

    // 3. A group is created in a leaf domain: its address comes from
    //    that domain's range, making it the ROOT DOMAIN for the group.
    let root = h.levels[1][0];
    let g = net.group_addr(root);
    println!(
        "group {} allocated from {}'s range {} -> {} is the root domain",
        g,
        h.graph.name(root),
        net.static_ranges[root.0].unwrap(),
        h.graph.name(root)
    );

    // 4. Members join from three other domains; joins propagate toward
    //    the root domain and build the bidirectional shared tree.
    let members: Vec<HostId> = [h.levels[1][4], h.levels[1][8], h.levels[0][2]]
        .iter()
        .map(|d| HostId {
            domain: asn_of(*d),
            host: 1,
        })
        .collect();
    for m in &members {
        net.host_join(*m, g);
    }
    net.converge();
    let edges = shared_tree_edges(&net, g);
    println!("shared tree edges (child -> parent):");
    for (c, p) in &edges {
        println!("  {} -> {}", net.graph.name(*c), net.graph.name(*p));
    }
    let violations = verify_tree(
        &net,
        g,
        root,
        &[h.levels[1][4], h.levels[1][8], h.levels[0][2]],
    );
    println!(
        "tree invariants: {}",
        if violations.is_empty() {
            "OK"
        } else {
            "VIOLATED"
        }
    );

    // 5. A host that never joined sends data (IP multicast: senders
    //    need not be members). It reaches every member exactly once.
    let sender = HostId {
        domain: asn_of(h.levels[1][6]),
        host: 9,
    };
    let id = net.send_data(sender, g);
    net.converge();
    let got = net.deliveries(id);
    println!(
        "packet from non-member {} delivered to {} members:",
        h.levels[1][6].0,
        got.len()
    );
    for r in &got {
        println!(
            "  host {} in domain {}",
            r.host,
            net.graph.name(masc_bgmp::core::domain_of(r.domain))
        );
    }
    assert_eq!(got.len(), members.len());
    assert_eq!(net.total_duplicates(), 0);
    println!(
        "no duplicates, {} encapsulations",
        net.total_encapsulations()
    );
}
