//! Watch MASC allocate address space: a miniature provider hierarchy
//! with accelerated timers, showing claims, collisions, doubling, and
//! the lifetimes/recycling machinery of §4.
//!
//! Run with: `cargo run --example address_allocation`

use masc_bgmp::masc::sim::MascActor;
use masc_bgmp::masc::{HierarchySim, HierarchySimParams, MascConfig, Workload};

fn main() {
    // 4 top-level providers, 4 children each; children request
    // 16-address blocks every 1-10 hours with 2-day lifetimes; claims
    // wait 1 hour for collisions (scaled from the paper's 48 h).
    let params = HierarchySimParams {
        top_level: 4,
        children_per: 4,
        workload: Workload {
            block_len: 28,
            block_lifetime: 2 * 86_400,
            min_gap: 3_600,
            max_gap: 10 * 3_600,
        },
        config: MascConfig {
            wait_period: 3_600,
            range_lifetime: 4 * 86_400,
            renew_margin: 12 * 3_600,
            claim_retry_backoff: 1_800,
            min_claim_len: 28,
            ..MascConfig::default()
        },
        seed: 42,
    };
    let mut sim = HierarchySim::new(params);

    println!("day | util  | leased | claimed | G-RIB avg/max | global prefixes");
    for day in 1..=8 {
        sim.run_to_day(day);
        let m = sim.sample();
        println!(
            "{:>3} | {:>5.3} | {:>6} | {:>7} | {:>7.1}/{:<4} | {}",
            day, m.utilization, m.leased, m.claimed_top, m.grib_avg, m.grib_max, m.global_prefixes
        );
    }

    println!();
    println!("per-domain allocations after 8 days:");
    for (label, ids) in [("top-level", &sim.tops), ("children", &sim.children)] {
        for id in ids.iter().take(4) {
            let a = sim.engine.node_as::<MascActor>(*id).expect("actor");
            let ranges: Vec<String> = a
                .node
                .granted_ranges()
                .iter()
                .map(|(p, _)| p.to_string())
                .collect();
            println!(
                "  {:>9} AS{:<3} claims={:<3} grants={:<3} collisions={:<2} ranges: {}",
                label,
                a.node.domain(),
                a.node.stats.claims_made,
                a.node.stats.grants,
                a.node.stats.collisions,
                ranges.join(", ")
            );
        }
    }
    println!();
    println!("note how children's ranges nest inside their parent's range — that nesting");
    println!("is what lets the parent advertise ONE aggregate group route for the whole");
    println!("family (§4.3.2), keeping every G-RIB small.");
}
