//! The paper's NASA shuttle-broadcast scenario (§5.1): "the multicast
//! session for a NASA space shuttle broadcast would have the shared
//! tree rooted in NASA's domain. The root would be reasonably optimal
//! for all receivers as they would receive packets from NASA along the
//! shortest path from them to the sender."
//!
//! We build an Internet-scale topology, root a group at the (dominant-
//! sender) initiator's domain, attach hundreds of receiver domains,
//! and compare per-receiver path lengths against a third-party-rooted
//! unidirectional tree — the quantitative version of the paper's
//! argument for initiator-rooted bidirectional trees.
//!
//! Run with: `cargo run --release --example shuttle_broadcast`

use masc_bgmp::core::trees::compare_trees;
use masc_bgmp::topology::{internet_like, DomainId, InternetSpec};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let graph = internet_like(&InternetSpec {
        n: 1500,
        backbones: 8,
        attach: 2,
        extra_peerings: 20,
        seed: 1998,
    });
    println!(
        "internet: {} domains, {} links",
        graph.len(),
        graph.edge_count()
    );

    // "NASA": a stub domain that both initiates the group and sources
    // nearly all the data.
    let nasa = DomainId(1234);
    let mut rng = StdRng::seed_from_u64(4);
    let mut pool: Vec<DomainId> = graph.domains().filter(|d| *d != nasa).collect();
    pool.shuffle(&mut rng);
    let receivers: Vec<DomainId> = pool[..400].to_vec();

    // Initiator-rooted (BGMP's default: the group address comes from
    // NASA's MASC range, so NASA is the root domain).
    let rooted_at_nasa = compare_trees(&graph, nasa, &receivers, nasa, DomainId(77));
    // Third-party-rooted unidirectional (PIM-SM-style RP in a random
    // backbone-ish domain) for contrast.
    println!();
    println!("400 receiver domains, sender = NASA");
    println!("{:<44} {:>8} {:>8}", "tree", "avg hops", "max hops");
    let avg = |v: &[u32]| v.iter().sum::<u32>() as f64 / v.len() as f64;
    let max = |v: &[u32]| *v.iter().max().unwrap();
    println!(
        "{:<44} {:>8.2} {:>8}",
        "shortest-path (ideal)",
        avg(&rooted_at_nasa.spt),
        max(&rooted_at_nasa.spt)
    );
    println!(
        "{:<44} {:>8.2} {:>8}",
        "BGMP bidirectional, rooted at NASA",
        avg(&rooted_at_nasa.bidirectional),
        max(&rooted_at_nasa.bidirectional)
    );
    println!(
        "{:<44} {:>8.2} {:>8}",
        "BGMP hybrid (+source-specific branches)",
        avg(&rooted_at_nasa.hybrid),
        max(&rooted_at_nasa.hybrid)
    );
    println!(
        "{:<44} {:>8.2} {:>8}",
        "unidirectional via third-party RP",
        avg(&rooted_at_nasa.unidirectional),
        max(&rooted_at_nasa.unidirectional)
    );
    println!();
    println!(
        "ratio vs shortest path: bidirectional {:.3}, hybrid {:.3}, unidirectional {:.3}",
        rooted_at_nasa.avg_ratio(&rooted_at_nasa.bidirectional),
        rooted_at_nasa.avg_ratio(&rooted_at_nasa.hybrid),
        rooted_at_nasa.avg_ratio(&rooted_at_nasa.unidirectional)
    );
    println!();
    println!("§5.1's claim holds: with the root at the dominant sender's domain, the");
    println!("shared tree COINCIDES with the reverse shortest-path tree (ratio ≈ 1),");
    println!("while a third-party root forces the up-and-down detour.");
    assert!(rooted_at_nasa.avg_ratio(&rooted_at_nasa.bidirectional) < 1.05);
}
