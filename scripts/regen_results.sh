#!/usr/bin/env bash
# Stale-results guard: regenerate every *small* committed results/
# artifact from source and fail on any byte of drift.
#
# The committed CSVs/JSONs under results/ are part of the repo's
# claim — "these numbers fall out of this code" — and nothing ties
# them to the code once a refactor lands unless something re-derives
# them. This script re-runs every sweep that finishes in seconds (the
# eight ablations, the smoke faults grid, and the full fig4 sweep; the
# long-horizon fig2 sweep is covered by its own golden-diff CI job at
# reduced size) and diffs the output against the committed files.
#
# Usage: scripts/regen_results.sh [--update]
#   --update  overwrite the committed files instead of failing on
#             drift (for deliberately refreshing after a reviewed
#             semantic change).

set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE=0
[[ "${1:-}" == "--update" ]] && UPDATE=1

ABLATIONS=(
  ablation_aggregation
  ablation_collisions
  ablation_encap
  ablation_kampai
  ablation_partition
  ablation_policy
  ablation_startup
  ablation_state_agg
)

OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT

cargo build --release -p masc-bgmp-bench

for bin in "${ABLATIONS[@]}"; do
  MASC_BGMP_RESULTS="$OUT" "./target/release/$bin" >/dev/null
done

# The faults sweep's committed artifact is the smoke grid (the full
# grid is minutes, not seconds), and fig4 is fast enough to re-derive
# at full size; both carry the BGMP-vs-BIER-vs-map-and-encap columns,
# byte-identical at any --threads.
MASC_BGMP_RESULTS="$OUT" ./target/release/ablation_faults --smoke --threads 4 >/dev/null
MASC_BGMP_RESULTS="$OUT" ./target/release/fig4_trees --threads 4 >/dev/null

fail=0
for bin in "${ABLATIONS[@]}" ablation_faults fig4_tree_quality; do
  for ext in csv json; do
    want="results/$bin.$ext"
    got="$OUT/$bin.$ext"
    if [[ ! -f "$got" ]]; then
      echo "MISSING: $bin never emitted $got" >&2
      fail=1
      continue
    fi
    if [[ $UPDATE == 1 ]]; then
      cp "$got" "$want"
    elif ! diff -u "$want" "$got"; then
      echo "STALE: $want no longer matches what the code produces" >&2
      fail=1
    fi
  done
done

if [[ $fail == 1 ]]; then
  echo >&2
  echo "committed results drifted from the code. If the change is" >&2
  echo "intentional, refresh with: scripts/regen_results.sh --update" >&2
  exit 1
fi
echo "all committed small results are fresh ($((${#ABLATIONS[@]} + 2)) sweeps, csv+json)"
