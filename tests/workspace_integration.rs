//! Workspace-level integration: exercises the public facade end to end,
//! including MASC-driven addressing feeding BGMP trees — the full
//! architecture loop of the paper (MASC → BGP group routes → BGMP).

use masc_bgmp::core::analysis::verify_tree;
use masc_bgmp::core::{asn_of, Addressing, BorderPlan, HostId, Internet, InternetConfig};
use masc_bgmp::masc::MascConfig;
use masc_bgmp::mcast_addr::Prefix;
use masc_bgmp::migp::MigpKind;
use masc_bgmp::simnet::SimDuration;
use masc_bgmp::topology::{hierarchical, DomainId, HierSpec};

/// The full loop: MASC claims ranges live inside the same simulation;
/// the granted ranges become BGP group routes; a group address from a
/// domain's MAAS roots the BGMP tree there; data flows.
#[test]
fn masc_to_bgp_to_bgmp_full_loop() {
    let h = hierarchical(&HierSpec {
        fanouts: vec![2, 3],
        mesh_top: true,
    });
    let cfg = InternetConfig {
        migp: MigpKind::Cbt,
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Masc(MascConfig {
            wait_period: 2, // seconds — accelerated for the test
            range_lifetime: 9_000_000,
            renew_margin: 1_000_000,
            claim_retry_backoff: 2,
            min_claim_len: 24,
            ..MascConfig::default()
        }),
        link_latency_ms: 5,
        ..Default::default()
    };
    let mut net = Internet::build(h.graph.clone(), &cfg);
    // Give MASC time to bootstrap and grant ranges: drive demand by
    // allocating a group in a leaf domain.
    net.run_for(SimDuration::from_secs(1));
    let root = h.levels[1][0];
    // Request a group address; the MAAS may need a claim first.
    let mut group = None;
    for _ in 0..60 {
        if let Some(g) = net.try_group_addr(root) {
            group = Some(g);
            break;
        }
        net.run_for(SimDuration::from_secs(5));
    }
    let g = group.expect("MASC must eventually grant a range for the group");
    // Let the BGP origination propagate.
    net.converge();

    // The group address must be covered by a group route everywhere.
    // §4.2's two-stage lookup: distant domains see only the PARENT's
    // aggregate (the child's more-specific route is suppressed outside
    // the parent, "A's border routers need not propagate 224.0.128/24
    // to other domains"); inside the parent the child's specific route
    // takes over.
    let parent_asn = asn_of(h.levels[0][0]);
    for d in net.graph.domains() {
        let ok = net.domain(d).routers.iter().any(|br| {
            br.speaker.rib().lookup_group(g).is_some_and(|r| {
                let o = r.origin_asn();
                o == Some(asn_of(root)) || o == Some(parent_asn)
            })
        });
        assert!(ok, "domain {:?} cannot resolve the MASC-allocated group", d);
    }
    // Inside the parent domain itself, the child's specific route wins.
    let inside = net.domain(h.levels[0][0]).routers.iter().any(|br| {
        br.speaker
            .rib()
            .lookup_group(g)
            .is_some_and(|r| r.origin_asn() == Some(asn_of(root)))
    });
    assert!(
        inside,
        "the parent must hold the child's more-specific route"
    );

    // Members join; the tree roots at the claiming domain; data flows.
    let members = [h.levels[1][3], h.levels[1][5], h.levels[0][1]];
    for m in members {
        net.host_join(
            HostId {
                domain: asn_of(m),
                host: 1,
            },
            g,
        );
    }
    net.converge();
    let violations = verify_tree(&net, g, root, &members);
    assert!(violations.is_empty(), "{violations:?}");

    let id = net.send_data(
        HostId {
            domain: asn_of(h.levels[1][1]),
            host: 4,
        },
        g,
    );
    net.converge();
    assert_eq!(net.deliveries(id).len(), members.len());
    assert_eq!(net.total_duplicates(), 0);
}

/// Many concurrent groups with interleaved membership keep exact-once
/// delivery and tree invariants (stress over the whole facade).
#[test]
fn many_groups_interleaved() {
    let h = hierarchical(&HierSpec {
        fanouts: vec![3, 3],
        mesh_top: true,
    });
    let cfg = InternetConfig {
        migp: MigpKind::Dvmrp,
        borders: BorderPlan::PerEdge,
        addressing: Addressing::Static,
        ..Default::default()
    };
    let mut net = Internet::build(h.graph.clone(), &cfg);
    net.converge();

    let n = h.graph.len();
    let mut groups = Vec::new();
    for i in 0..6 {
        let root = DomainId(i * 2 % n);
        let g = net.group_addr(root);
        // Every third domain joins each group, offset by i.
        let mut members = Vec::new();
        for j in 0..n {
            if (j + i) % 3 == 0 && j != root.0 {
                let m = HostId {
                    domain: asn_of(DomainId(j)),
                    host: i as u32,
                };
                net.host_join(m, g);
                members.push(m);
            }
        }
        groups.push((root, g, members));
    }
    net.converge();

    for (root, g, members) in &groups {
        let doms: Vec<DomainId> = members
            .iter()
            .map(|m| masc_bgmp::core::domain_of(m.domain))
            .collect();
        let violations = verify_tree(&net, *g, *root, &doms);
        assert!(violations.is_empty(), "group {g}: {violations:?}");
        let sender = HostId {
            domain: asn_of(DomainId((root.0 + 1) % n)),
            host: 99,
        };
        let id = net.send_data(sender, *g);
        net.converge();
        let got = net.deliveries(id);
        let expected: std::collections::BTreeSet<HostId> =
            members.iter().copied().filter(|m| *m != sender).collect();
        assert_eq!(
            got.iter()
                .copied()
                .collect::<std::collections::BTreeSet<_>>(),
            expected,
            "group {g} delivery mismatch"
        );
    }
    assert_eq!(net.total_duplicates(), 0);
}

/// Facade sanity: the re-exported crates interoperate at the type
/// level (a user mixing layers never hits duplicate-type errors).
#[test]
fn facade_types_interoperate() {
    let p: Prefix = "224.1.0.0/16".parse().unwrap();
    let route = masc_bgmp::bgp::Route::originate(masc_bgmp::bgp::Nlri::Group(p), 7, 70);
    assert_eq!(route.origin_asn(), Some(7));
    let mut rib = masc_bgmp::bgp::Rib::new();
    rib.originate(route);
    assert_eq!(rib.grib_size(), 1);
    assert!(rib.lookup_group(p.base()).is_some());
}
