//! Tier-1 gate: the whole workspace must be repolint-clean.
//!
//! This runs under plain `cargo test` from the repo root, so the
//! determinism & robustness contract (DESIGN.md §"Determinism &
//! robustness contract") is enforced on every tier-1 run, not only
//! when the repolint package's own tests are invoked.

use std::path::Path;

#[test]
fn workspace_is_repolint_clean() {
    let findings =
        repolint::lint_workspace(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "repolint findings (fix them or add `// lint:allow(rule) — justification`):\n{}",
        repolint::render_human(&findings)
    );
}
