//! Decode-robustness sweep over every peer-facing wire codec: a
//! corrupted frame must surface as a typed `SnapError`, never a panic.
//!
//! Two corruption families over a corpus of valid encodings covering
//! every variant of [`BgpMsg`], [`BgmpMsg`], [`MascMsg`], and
//! [`BierMsg`]:
//!
//! * **truncation** — every strict prefix of a valid encoding must
//!   fail to decode (the codecs are fixed-width/length-prefixed, so a
//!   shortened frame always runs out mid-field), exercised
//!   exhaustively;
//! * **single-byte bitflip** — a flipped payload may still be a legal
//!   encoding of a *different* message (flipping a value bit), so the
//!   property is totality plus self-consistency: decode must return
//!   (never panic), and when it returns `Ok(v)`, re-encoding `v` must
//!   decode back to `v`.
//!
//! The vendored proptest is seeded and deterministic; rerun a failure
//! with `PROPTEST_SEED`.

use bgmp::{BgmpMsg, SourceId};
use bgp::{AsPath, BgpMsg, Nlri, Route, RouteSourceKind};
use bier::{BfrId, BierMsg, BitString, SetId};
use masc::MascMsg;
use mcast_addr::{McastAddr, Prefix};
use proptest::prelude::*;
use snapshot::{Dec, Enc, Snapshot};

/// Encodes one message the way every session layer frames it: bare
/// payload from a fresh encoder, no snapshot header.
fn enc_of<T: Snapshot>(msg: &T) -> Vec<u8> {
    let mut enc = Enc::new();
    msg.encode(&mut enc);
    enc.finish()
}

/// Full strict decode: value + `finish()` (trailing bytes are a
/// corruption too). Returns the re-encoding when the frame was legal.
fn probe<T: Snapshot>(bytes: &[u8]) -> Option<(T, Vec<u8>)> {
    let mut dec = Dec::new(bytes);
    let v = T::decode(&mut dec).ok()?;
    dec.finish().ok()?;
    let bytes = enc_of(&v);
    Some((v, bytes))
}

fn prefix(base: u32, len: u8) -> Prefix {
    Prefix::new(base, len).expect("aligned test prefix")
}

/// A corpus entry: protocol tag, one valid encoding, and a bitflip
/// check. `fn` pointers erase the message type so one property loop
/// covers all four codecs.
type Entry = (&'static str, Vec<u8>, fn(&[u8]) -> bool);

/// One encoding per enum variant, per protocol.
fn corpus() -> Vec<Entry> {
    let route = Route {
        nlri: Nlri::Group(prefix(0xE100_0000, 12)),
        as_path: AsPath::new(&[7, 3, 9]),
        next_hop: 42,
        local: false,
        ebgp: true,
    };
    let bgp_msgs = vec![
        BgpMsg::Update {
            route,
            kind: RouteSourceKind::Customer,
        },
        BgpMsg::Withdraw(Nlri::Domain(19)),
    ];
    let src = SourceId { domain: 5, host: 2 };
    let g = McastAddr(0xE100_0001);
    let bgmp_msgs = vec![
        BgmpMsg::Join(g),
        BgmpMsg::Prune(g),
        BgmpMsg::SourceJoin(src, g),
        BgmpMsg::SourcePrune(src, g),
    ];
    let masc_msgs = vec![
        MascMsg::ParentAdvertise {
            ranges: vec![
                (prefix(0xE000_0000, 8), 3_600, true),
                (prefix(0xE200_0000, 10), 120, false),
            ],
        },
        MascMsg::Claim {
            claimer: 11,
            prefix: prefix(0xE140_0000, 16),
            expires: 9_000,
            at: 41,
        },
        MascMsg::Collision {
            holder: 4,
            prefix: prefix(0xE140_0000, 16),
        },
        MascMsg::Renew {
            claimer: 11,
            prefix: prefix(0xE140_0000, 16),
            expires: 18_000,
        },
        MascMsg::SpaceNeeded {
            claimer: 23,
            demand: 512,
        },
        MascMsg::Release {
            claimer: 11,
            prefix: prefix(0xE140_0000, 16),
        },
    ];
    let mut bits = BitString::new(256);
    bits.set(0);
    bits.set(37);
    bits.set(255);
    let bier_msgs = vec![
        BierMsg::Subscribe {
            group: 6,
            bfr: BfrId(12),
        },
        BierMsg::Unsubscribe {
            group: 6,
            bfr: BfrId(12),
        },
        BierMsg::Packet {
            group: 6,
            si: SetId(1),
            bits,
        },
        BierMsg::AdjDown {
            from: BfrId(3),
            to: BfrId(4),
        },
        BierMsg::AdjUp {
            from: BfrId(3),
            to: BfrId(4),
        },
    ];

    let mut out: Vec<Entry> = Vec::new();
    for m in &bgp_msgs {
        out.push(("bgp", enc_of(m), |b| {
            probe::<BgpMsg>(b).is_none_or(|(v, re)| probe::<BgpMsg>(&re).map(|(w, _)| w) == Some(v))
        }));
    }
    for m in &bgmp_msgs {
        out.push(("bgmp", enc_of(m), |b| {
            probe::<BgmpMsg>(b)
                .is_none_or(|(v, re)| probe::<BgmpMsg>(&re).map(|(w, _)| w) == Some(v))
        }));
    }
    for m in &masc_msgs {
        out.push(("masc", enc_of(m), |b| {
            probe::<MascMsg>(b)
                .is_none_or(|(v, re)| probe::<MascMsg>(&re).map(|(w, _)| w) == Some(v))
        }));
    }
    for m in &bier_msgs {
        out.push(("bier", enc_of(m), |b| {
            probe::<BierMsg>(b)
                .is_none_or(|(v, re)| probe::<BierMsg>(&re).map(|(w, _)| w) == Some(v))
        }));
    }
    out
}

/// Decodes `bytes` as the corpus entry's message type and reports
/// whether a full strict decode succeeded (used by truncation, where
/// success itself is the failure).
fn decodes(entry: &Entry, bytes: &[u8]) -> bool {
    match entry.0 {
        "bgp" => probe::<BgpMsg>(bytes).is_some(),
        "bgmp" => probe::<BgmpMsg>(bytes).is_some(),
        "masc" => probe::<MascMsg>(bytes).is_some(),
        _ => probe::<BierMsg>(bytes).is_some(),
    }
}

#[test]
fn every_strict_prefix_of_every_message_fails_to_decode() {
    for entry in &corpus() {
        let (proto, bytes, _) = entry;
        assert!(
            decodes(entry, bytes),
            "{proto}: corpus entry no longer decodes whole"
        );
        for cut in 0..bytes.len() {
            assert!(
                !decodes(entry, &bytes[..cut]),
                "{proto}: truncation to {cut}/{} bytes decoded successfully",
                bytes.len()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// A single flipped bit anywhere in any frame: decode returns
    /// (totality — a panic fails the test), and an accidental legal
    /// decode is a message the codec round-trips faithfully.
    #[test]
    fn single_bitflips_never_panic_and_legal_decodes_roundtrip(
        pick in any::<u32>(),
        pos in any::<u32>(),
        bit in 0u32..8,
    ) {
        let corpus = corpus();
        let (proto, bytes, check) = &corpus[pick as usize % corpus.len()];
        let mut mutated = bytes.clone();
        let i = pos as usize % mutated.len();
        mutated[i] ^= 1 << bit;
        prop_assert!(
            check(&mutated),
            "{} frame with bit {} of byte {} flipped decoded to a value that does not round-trip",
            proto, bit, i
        );
    }
}
